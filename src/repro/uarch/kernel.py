"""Batched structure-of-arrays timing kernel.

Every figure/table sweep re-simulates the *same trace* under
configurations that differ only in latencies, widths and frequency.  The
scalar :class:`~repro.uarch.ooo.OutOfOrderCore` interleaves three kinds
of work per micro-op:

1. **trace decoding** — attribute lookups on :class:`MicroOp` objects,
2. **microarchitectural state that is configuration-independent** — the
   branch predictor outcome and the cache level each access is served
   from depend only on the access *sequence* and the L2 geometry
   (``shared_l2`` is the single config knob that changes cache contents;
   per-level latencies are pure table lookups),
3. **timing recurrences** — the only part that actually varies per
   configuration.

This kernel factors the three apart.  A trace is decoded **once** into
flat arrays (op class codes, producer distances, FU latencies); the
predictor and cache hierarchy are replayed **once per cache geometry**
into per-access level/outcome arrays; and the timing recurrences are
then evaluated per configuration against those arrays — either with a
tight decoded scalar loop (no cache/predictor/decode work left in it) or,
for wide batches, with the issue/execute/commit recurrences broadcast
over a ``(N,)`` configuration axis in NumPy.  The in-order width
limiters vectorize exactly via the closed form

    ``c[i] = max(e[i], c[i-1], c[i-width] + 1)``

(the cycle of the i-th allocation of a ``_WidthLimiter`` fed earliest
cycles ``e``); the out-of-order issue/FU occupancy maps keep their exact
first-fit semantics per configuration.

:func:`run_trace_batch` is the public entry point; it is **cycle-exact**
against the scalar oracle — same ``SimResult``, same stats, same stall
attribution — which the property tests assert op-for-op.  The scalar
:meth:`OutOfOrderCore.run` remains the reference implementation (the
same oracle pattern as the thermal solver's reference path).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.configs import CoreConfig
from repro.uarch import ooo as _ooo
from repro.uarch.bpred import TournamentPredictor
from repro.uarch.cache import (
    PREFETCH_DEGREE,
    CacheHierarchy,
    CoherenceDirectory,
)
from repro.uarch.isa import (
    FP_DIV_ISSUE_INTERVAL,
    FU_POOLS,
    OP_LATENCY,
    OpClass,
    Trace,
)
from repro.uarch.ooo import (
    FETCH_BLOCK_UOPS,
    FRONT_END_DEPTH,
    SimResult,
    SimStats,
    _FuPool,
    _PerCycleBandwidth,
)

#: Fallback batch width at which :func:`run_trace_batch` switches from
#: per-config scalar loops to the batched vector path.  The merged
#: config-unrolled mode (see :func:`_time_merged`) amortizes the trace
#: walk across configs from width 2 up, so the shipped default is 2;
#: :func:`calibrate` measures the real crossover on the host and
#: persists it, and ``$REPRO_KERNEL_VECTOR_MIN`` overrides both.
DEFAULT_VECTOR_MIN = 2

#: Stable integer encoding of :class:`OpClass` (SoA op-code arrays).
_OP_ORDER = tuple(OpClass)
_CODE = {op: index for index, op in enumerate(_OP_ORDER)}
_LOAD = _CODE[OpClass.LOAD]
_STORE = _CODE[OpClass.STORE]
_BRANCH = _CODE[OpClass.BRANCH]
_COMPLEX = _CODE[OpClass.COMPLEX]
_SYNC = _CODE[OpClass.SYNC]
_DIV = _CODE[OpClass.DIV]
_FP_DIV = _CODE[OpClass.FP_DIV]
_FP_ADD = _CODE[OpClass.FP_ADD]
_FP_MUL = _CODE[OpClass.FP_MUL]
_LAT = tuple(OP_LATENCY[op] for op in _OP_ORDER)
_POOL_SIZES = tuple(FU_POOLS[op] for op in _OP_ORDER)

#: Memory levels in fixed order; replay stores per-access level codes.
_LEVELS = ("L1", "L2", "L3", "DRAM")


def kernel_enabled() -> bool:
    """Whether the engine should route batches through this kernel
    (``$REPRO_KERNEL=0`` disables it; the scalar oracle runs instead)."""
    value = os.environ.get("REPRO_KERNEL", "1").strip().lower()
    return value not in ("0", "false", "off", "no")


#: Env-value spellings already warned about this process (one
#: ``warnings.warn`` per distinct invalid ``$REPRO_KERNEL_VECTOR_MIN``).
_WARNED_VECTOR_MIN: set = set()


def _env_vector_min() -> Optional[int]:
    """Validated ``$REPRO_KERNEL_VECTOR_MIN``, or ``None`` when unset or
    malformed.  Garbage falls back to the tuned/default threshold with a
    single warning per spelling; numeric values are clamped to >= 2 (a
    width-1 "batch" is by definition the scalar path)."""
    raw = os.environ.get("REPRO_KERNEL_VECTOR_MIN", "")
    stripped = raw.strip()
    if not stripped:
        return None
    try:
        value = int(stripped)
    except ValueError:
        if raw not in _WARNED_VECTOR_MIN:
            _WARNED_VECTOR_MIN.add(raw)
            warnings.warn(
                f"ignoring invalid $REPRO_KERNEL_VECTOR_MIN={raw!r}"
                " (not an integer)",
                RuntimeWarning, stacklevel=3,
            )
        return None
    if value < 2:
        if raw not in _WARNED_VECTOR_MIN:
            _WARNED_VECTOR_MIN.add(raw)
            warnings.warn(
                f"clamping $REPRO_KERNEL_VECTOR_MIN={raw!r} to 2"
                " (the vectorized path needs a batch)",
                RuntimeWarning, stacklevel=3,
            )
        return 2
    return value


def tuning_path() -> "Path":
    """Where the persisted kernel tuning lives: ``$REPRO_TUNING_FILE``
    or ``.repro/kernel_tuning.json`` at the repository root."""
    env = os.environ.get("REPRO_TUNING_FILE", "").strip()
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".repro" / "kernel_tuning.json"


def tuned_vector_min() -> Optional[int]:
    """The persisted measured threshold, or ``None`` when absent or
    malformed (a corrupt tuning file must never break dispatch)."""
    path = tuning_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    value = payload.get("vector_min") if isinstance(payload, dict) else None
    if isinstance(value, bool) or not isinstance(value, int) or value < 2:
        return None
    return value


def save_tuning(record: dict, path: Optional["Path"] = None) -> "Path":
    """Persist a :func:`calibrate` record (atomic write)."""
    target = Path(path) if path is not None else tuning_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_suffix(".tmp")
    with open(scratch, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    scratch.replace(target)
    return target


def vector_min_width() -> int:
    """Minimum batch width for the vectorized batch path.

    Precedence: a valid ``$REPRO_KERNEL_VECTOR_MIN`` (clamped to >= 2),
    else the measured threshold persisted by :func:`calibrate` +
    :func:`save_tuning`, else :data:`DEFAULT_VECTOR_MIN`.
    """
    value = _env_vector_min()
    if value is not None:
        return value
    tuned = tuned_vector_min()
    if tuned is not None:
        return tuned
    return DEFAULT_VECTOR_MIN


def calibrate(widths: Sequence[int] = (2, 4, 8, 16, 32, 64),
              uops: int = 2000, repeats: int = 3,
              seed: int = 1234) -> dict:
    """Measure the batched-scalar/vectorized crossover on this machine.

    For each width the same decoded trace and replay image time both
    paths (min over ``repeats`` to shed scheduler noise): N independent
    ``_time_one`` loops versus one ``_time_many`` call.  The returned
    record carries per-width seconds, the smallest width where the
    vectorized path wins (``crossover``), and the resulting dispatch
    threshold (``vector_min``) ready for :func:`save_tuning`.
    """
    from repro.core.configs import single_core_configs
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import spec_profiles

    base = single_core_configs()
    trace = generate_trace(spec_profiles()[0], uops, seed=seed)
    arrays = decode(trace)
    corrects = branch_outcomes(trace)
    image = replay_memory(trace, base[0])

    def _min_time(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            began = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - began)
        return best

    batched: Dict[int, float] = {}
    vectorized: Dict[int, float] = {}
    crossover: Optional[int] = None
    for width in widths:
        configs = [base[k % len(base)] for k in range(width)]
        _time_many(trace, arrays, corrects, image, configs)  # warm/compile
        batched[width] = _min_time(lambda: [
            _time_one(trace, arrays, corrects, image, config)
            for config in configs
        ])
        vectorized[width] = _min_time(
            lambda: _time_many(trace, arrays, corrects, image, configs)
        )
        if crossover is None and vectorized[width] <= batched[width]:
            crossover = width
    vector_min = max(2, crossover) if crossover is not None else \
        DEFAULT_VECTOR_MIN
    return {
        "widths": list(widths),
        "uops": uops,
        "repeats": repeats,
        "batched_seconds": {str(w): batched[w] for w in widths},
        "vectorized_seconds": {str(w): vectorized[w] for w in widths},
        "crossover": crossover,
        "vector_min": vector_min,
    }


# -- SoA decode ---------------------------------------------------------------


class TraceArrays:
    """Flat, configuration-independent decode of a trace's measured region."""

    __slots__ = (
        "n", "codes", "src1", "src2", "lat", "busy",
        "load_pos", "store_pos", "sync_pos", "load_pos_np", "store_pos_np",
        "loads", "stores", "branches", "fp_ops", "complex_decodes",
        "ifetch_blocks",
    )

    def __init__(self, trace: Trace) -> None:
        ops = trace.ops[trace.warmup_ops:]
        n = len(ops)
        self.n = n
        codes = [0] * n
        src1 = [0] * n
        src2 = [0] * n
        lat = [0] * n
        busy = [0] * n
        load_pos: List[int] = []
        store_pos: List[int] = []
        sync_pos: List[int] = []
        branches = fp_ops = complex_decodes = 0
        code_of = _CODE
        for i, uop in enumerate(ops):
            code = code_of[uop.op]
            codes[i] = code
            # A producer distance beyond the measured prefix never gates
            # (the oracle's ``dist <= i`` check); encode it as "ready".
            dist = uop.src1
            if dist is not None and dist <= i:
                src1[i] = dist
            dist = uop.src2
            if dist is not None and dist <= i:
                src2[i] = dist
            latency = _LAT[code]
            lat[i] = latency
            # Table 9: only the divides block their unit for the full
            # latency; everything else is pipelined.
            busy[i] = latency if (code == _DIV or code == _FP_DIV) else 1
            if code == _LOAD:
                load_pos.append(i)
            elif code == _STORE:
                store_pos.append(i)
            elif code == _BRANCH:
                branches += 1
            elif code == _COMPLEX:
                complex_decodes += 1
            elif code == _SYNC:
                sync_pos.append(i)
            elif code == _FP_ADD or code == _FP_MUL or code == _FP_DIV:
                fp_ops += 1
        self.codes = codes
        self.src1 = src1
        self.src2 = src2
        self.lat = lat
        self.busy = busy
        self.load_pos = load_pos
        self.store_pos = store_pos
        self.sync_pos = sync_pos
        self.load_pos_np = np.asarray(load_pos, dtype=np.int64)
        self.store_pos_np = np.asarray(store_pos, dtype=np.int64)
        self.loads = len(load_pos)
        self.stores = len(store_pos)
        self.branches = branches
        self.fp_ops = fp_ops
        self.complex_decodes = complex_decodes
        self.ifetch_blocks = (n + FETCH_BLOCK_UOPS - 1) // FETCH_BLOCK_UOPS


class MemoryImage:
    """Per-geometry replay outcome: which level served every access.

    The cache hierarchy's hit/miss/level sequence depends on the
    configuration only through ``shared_l2`` (the sole geometry knob in
    :class:`CacheHierarchy`); per-level *latencies* are pure config
    lookups applied afterwards.  The coherence ``remote`` flags depend
    on the access order alone.
    """

    __slots__ = ("fetch_levels", "load_levels", "load_remote", "any_remote",
                 "mem_level_counts")

    def __init__(self, fetch_levels, load_levels, load_remote,
                 mem_level_counts) -> None:
        self.fetch_levels = np.asarray(fetch_levels, dtype=np.int64)
        self.load_levels = np.asarray(load_levels, dtype=np.int64)
        self.load_remote = np.asarray(load_remote, dtype=np.int64)
        self.any_remote = bool(self.load_remote.any()) if load_remote else False
        self.mem_level_counts = mem_level_counts


def _kernel_state(trace: Trace) -> dict:
    """Decode/replay memo attached to the trace object itself (a trace
    is immutable once generated, so its decode never invalidates)."""
    state = getattr(trace, "_kernel_state", None)
    if state is None:
        state = {"images": {}}
        trace._kernel_state = state
    return state


def decode(trace: Trace) -> TraceArrays:
    """SoA decode of the measured region, memoized on the trace."""
    state = _kernel_state(trace)
    arrays = state.get("arrays")
    if arrays is None:
        arrays = TraceArrays(trace)
        state["arrays"] = arrays
    return arrays


def branch_outcomes(trace: Trace) -> List[bool]:
    """Per-branch predictor outcomes for the measured region, memoized.

    The tournament predictor is fully configuration-independent, so the
    warmup-train + measured-predict replay is a pure function of the
    trace.
    """
    state = _kernel_state(trace)
    corrects = state.get("branches")
    if corrects is None:
        predictor = TournamentPredictor()
        predict_and_train = predictor.predict_and_train
        ops = trace.ops
        warmup = trace.warmup_ops
        BRANCH = OpClass.BRANCH
        for i in range(warmup):
            uop = ops[i]
            if uop.op is BRANCH:
                predict_and_train(uop.pc, uop.taken)
        corrects = []
        for i in range(warmup, len(ops)):
            uop = ops[i]
            if uop.op is BRANCH:
                corrects.append(predict_and_train(uop.pc, uop.taken))
        state["branches"] = corrects
    return corrects


def _level_walker(cache):
    """Hit/miss-only access closure over one cache level's raw tag lists.

    Replay needs the serving *level*; latencies are per-config lookups
    applied later.  Walking the per-set lists directly skips the
    ``AccessResult`` allocation and hit/miss bookkeeping of
    :meth:`SetAssociativeCache.access` — the hierarchy is replay-private,
    so its counters are never read.  Build walkers only *after*
    ``preload`` (which may swap the ``_lines`` object wholesale).
    """
    lines = cache._lines
    sets = cache.sets
    ways = cache.ways
    line_bytes = cache.line_bytes

    def walk(address: int) -> bool:
        tag = address // line_bytes
        line = lines[tag % sets]
        if tag in line:
            line.remove(tag)
            line.append(tag)
            return True
        line.append(tag)
        if len(line) > ways:
            line.pop(0)
        return False

    return walk


def replay_memory(trace: Trace, donor_config: CoreConfig, core_id: int = 0,
                  coherence: Optional[CoherenceDirectory] = None,
                  noc_penalty: int = 0) -> MemoryImage:
    """Replay preload + warmup + measured accesses through the real
    cache hierarchy (and coherence directory, when given), recording the
    level that served each instruction block and each load.

    The donor config only contributes its cache *geometry*
    (``shared_l2``); single-core images are memoized on the trace per
    geometry.  Multicore replays are coupled across cores through the
    shared directory, so their caller sequences and memoizes them.
    """
    single = coherence is None
    if single:
        images: Dict[bool, MemoryImage] = _kernel_state(trace)["images"]
        image = images.get(donor_config.shared_l2)
        if image is not None:
            return image
    caches = CacheHierarchy(donor_config, core_id, None)
    if trace.resident_data or trace.resident_code:
        caches.preload(trace.resident_data, trace.resident_code)
    ops = trace.ops
    warmup = trace.warmup_ops
    LOAD = OpClass.LOAD
    STORE = OpClass.STORE
    il1 = _level_walker(caches.il1)
    dl1 = _level_walker(caches.dl1)
    l2 = _level_walker(caches.l2)
    l3 = _level_walker(caches.l3)
    l2_line = caches.l2.line_bytes
    prefetch_spans = tuple(
        ahead * l2_line for ahead in range(1, PREFETCH_DEGREE + 1)
    )
    account = coherence.account if coherence is not None else None

    def fetch_code(address: int) -> int:
        """Level code of an instruction fetch (IL1 -> L2 -> L3 -> DRAM)."""
        if il1(address):
            return 0
        if l2(address):
            return 1
        if l3(address):
            return 2
        return 3

    def data_code(address: int) -> int:
        """Level code of a data access, including the L2-miss stream
        prefetch touches, in :meth:`CacheHierarchy.data_access` order."""
        if dl1(address):
            return 0
        if l2(address):
            return 1
        for span in prefetch_spans:
            next_line = address + span
            l2(next_line)
            l3(next_line)
        if l3(address):
            return 2
        return 3

    # Warmup replay, cache (and coherence) side only: the oracle's
    # ``warmup`` touches the predictor too, but the two systems never
    # interact, so the split replay is exact.  The directory account runs
    # *before* the cache lookup, matching ``CacheHierarchy.data_access``.
    for i in range(warmup):
        uop = ops[i]
        if i % FETCH_BLOCK_UOPS == 0:
            fetch_code(uop.pc if uop.pc else i * 4)
        op = uop.op
        if op is LOAD or op is STORE:
            if account is not None:
                account(core_id, uop.address, op is STORE, noc_penalty)
            data_code(uop.address)
    fetch_levels: List[int] = []
    load_levels: List[int] = []
    load_remote: List[int] = []
    code_counts = [0, 0, 0, 0]
    for i in range(warmup, len(ops)):
        uop = ops[i]
        measured_index = i - warmup
        if measured_index % FETCH_BLOCK_UOPS == 0:
            fetch_levels.append(
                fetch_code(uop.pc if uop.pc else measured_index * 4)
            )
        op = uop.op
        if op is LOAD:
            extra = 0
            if account is not None:
                extra = account(core_id, uop.address, False, noc_penalty)
            code = data_code(uop.address)
            code_counts[code] += 1
            load_levels.append(code)
            load_remote.append(1 if extra else 0)
        elif op is STORE:
            if account is not None:
                account(core_id, uop.address, True, noc_penalty)
            data_code(uop.address)
    counts = {
        level: count
        for level, count in zip(_LEVELS, code_counts) if count
    }
    image = MemoryImage(fetch_levels, load_levels, load_remote, counts)
    if single:
        images[donor_config.shared_l2] = image
    return image


# -- per-config latency tables ------------------------------------------------


def _load_done_terms(config: CoreConfig, image: MemoryImage,
                     noc_penalty: int) -> np.ndarray:
    """Per-load ``access.latency + load_extra`` under one config."""
    table = np.array(
        [
            config.dl1_cycles,
            config.l2_cycles,
            config.l3_cycles + noc_penalty,
            config.l3_cycles + noc_penalty + config.dram_cycles,
        ],
        dtype=np.int64,
    )
    terms = table[image.load_levels]
    if image.any_remote:
        terms = terms + image.load_remote * max(2, noc_penalty)
    return terms + (config.load_to_use_cycles - 4)


def _fetch_penalties(config: CoreConfig, image: MemoryImage) -> np.ndarray:
    """Per-block ``access.latency - il1_cycles`` under one config."""
    il1 = config.il1_cycles
    table = np.array(
        [
            0,
            config.l2_cycles - il1,
            config.l3_cycles - il1,
            config.l3_cycles + config.dram_cycles - il1,
        ],
        dtype=np.int64,
    )
    return table[image.fetch_levels]


# -- scalar timing path -------------------------------------------------------


def _time_one(trace: Trace, arrays: TraceArrays, corrects: Sequence[bool],
              image: MemoryImage, config: CoreConfig,
              noc_penalty: int = 0) -> SimResult:
    """Tight decoded timing loop for one configuration.

    A transliteration of :meth:`OutOfOrderCore.run` with all decode,
    cache and predictor work replaced by the precomputed arrays; the
    width limiters are inlined, the issue/FU occupancy maps are the real
    ones (same first-fit walks, same pruning schedule) so the schedule —
    and the tracked-cycle telemetry — is identical to the oracle's.
    """
    cfg = config
    n = arrays.n
    codes = arrays.codes
    src1 = arrays.src1
    src2 = arrays.src2
    lat_l = arrays.lat
    busy_l = arrays.busy
    load_done = _load_done_terms(cfg, image, noc_penalty).tolist()
    fetch_pen = _fetch_penalties(cfg, image).tolist()

    completion = [0] * n
    issue_at = [0] * n
    commit_at = [0] * n

    # In-order width limiters, inlined (_WidthLimiter state pairs).
    f_width = cfg.dispatch_width * 2
    f_cycle = f_used = 0
    r_width = cfg.dispatch_width
    r_cycle = r_used = 0
    c_width = cfg.commit_width
    c_cycle = c_used = 0
    issue_slots = _PerCycleBandwidth(cfg.issue_width)
    issue_alloc = issue_slots.allocate
    pools = [_FuPool(count) for count in _POOL_SIZES]
    reserves = [pool.reserve for pool in pools]

    rob_entries = cfg.rob_entries
    iq_entries = cfg.iq_entries
    lq_entries = cfg.lq_entries
    sq_entries = cfg.sq_entries
    hetero = cfg.hetero
    refill = max(1, cfg.branch_mispredict_cycles - FRONT_END_DEPTH)
    lq_inflight: deque = deque(maxlen=lq_entries)
    sq_inflight: deque = deque(maxlen=sq_entries)

    redirect_free = 0
    fetch_block_ready = 0
    last_fp_div_issue = -FP_DIV_ISSUE_INTERVAL
    prune_interval = _ooo.PRUNE_INTERVAL
    prune_at = prune_interval
    rename = 0
    k_load = k_branch = k_block = 0
    stall_fetch_icache = stall_fetch_redirect = 0
    stall_rename_bw = stall_rob = stall_iq = stall_lq = stall_sq = 0
    stall_decode = stall_operand = stall_fu = stall_issue_bw = 0

    LOAD = _LOAD
    STORE = _STORE
    BRANCH = _BRANCH
    COMPLEX = _COMPLEX
    FP_DIV = _FP_DIV

    for i in range(n):
        code = codes[i]
        # ---- fetch ---------------------------------------------------------
        if i % FETCH_BLOCK_UOPS == 0:
            penalty = fetch_pen[k_block]
            k_block += 1
            base = fetch_block_ready
            if redirect_free > base:
                stall_fetch_redirect += redirect_free - base
                base = redirect_free
            if penalty > 0:
                stall_fetch_icache += penalty
                fetch_block_ready = base + penalty
            else:
                fetch_block_ready = base
        earliest = (fetch_block_ready
                    if fetch_block_ready >= redirect_free else redirect_free)
        if earliest > f_cycle:
            f_cycle = earliest
            f_used = 0
        if f_used >= f_width:
            f_cycle += 1
            f_used = 0
        f_used += 1

        # ---- rename/dispatch: ROB/IQ/LQ/SQ occupancy -----------------------
        earliest = f_cycle + FRONT_END_DEPTH
        if i >= rob_entries:
            gate = commit_at[i - rob_entries]
            if gate > earliest:
                stall_rob += gate - earliest
                earliest = gate
        if i >= iq_entries:
            gate = issue_at[i - iq_entries]
            if gate > earliest:
                stall_iq += gate - earliest
                earliest = gate
        if code == LOAD:
            if len(lq_inflight) == lq_entries:
                gate = commit_at[lq_inflight[0]]
                if gate > earliest:
                    stall_lq += gate - earliest
                    earliest = gate
            lq_inflight.append(i)
        elif code == STORE:
            if len(sq_inflight) == sq_entries:
                gate = commit_at[sq_inflight[0]]
                if gate > earliest:
                    stall_sq += gate - earliest
                    earliest = gate
            sq_inflight.append(i)
        elif code == COMPLEX:
            if hetero:
                earliest += 1
                stall_decode += 1
        if earliest > r_cycle:
            r_cycle = earliest
            r_used = 0
        if r_used >= r_width:
            r_cycle += 1
            r_used = 0
        r_used += 1
        rename = r_cycle
        if rename > earliest:
            stall_rename_bw += rename - earliest

        # ---- register readiness --------------------------------------------
        ready = rename + 1
        dist = src1[i]
        if dist:
            produced = completion[i - dist]
            if produced > ready:
                ready = produced
        dist = src2[i]
        if dist:
            produced = completion[i - dist]
            if produced > ready:
                ready = produced
        if ready > rename + 1:
            stall_operand += ready - (rename + 1)

        # ---- issue ---------------------------------------------------------
        if code == FP_DIV:
            refractory = last_fp_div_issue + FP_DIV_ISSUE_INTERVAL
            if refractory > ready:
                stall_fu += refractory - ready
                ready = refractory
        start = reserves[code](ready, busy_l[i])
        if start > ready:
            stall_fu += start - ready
        issue = issue_alloc(start)
        if issue > start:
            stall_issue_bw += issue - start
        issue_at[i] = issue
        if code == FP_DIV:
            last_fp_div_issue = issue

        # ---- execute -------------------------------------------------------
        done = issue + lat_l[i]
        if code == LOAD:
            done = issue + load_done[k_load]
            k_load += 1
        elif code == BRANCH:
            if not corrects[k_branch]:
                if done + refill > redirect_free:
                    redirect_free = done + refill
            k_branch += 1
        completion[i] = done

        # ---- commit --------------------------------------------------------
        prev_commit = commit_at[i - 1] if i else 0
        target = done + 1 if done + 1 > prev_commit else prev_commit
        if target > c_cycle:
            c_cycle = target
            c_used = 0
        if c_used >= c_width:
            c_cycle += 1
            c_used = 0
        c_used += 1
        commit_at[i] = c_cycle

        # ---- bookkeeping ---------------------------------------------------
        if i >= prune_at:
            prune_at = i + prune_interval
            issue_slots.prune(rename)
            for pool in pools:
                pool.prune(rename)

    tracked = issue_slots.tracked_cycles + sum(
        pool.tracked_cycles for pool in pools
    )
    return _build_result(
        trace, arrays, corrects, image, cfg, commit_at,
        stall_cycles={
            "fetch_icache": stall_fetch_icache,
            "fetch_redirect": stall_fetch_redirect,
            "rename_bw": stall_rename_bw,
            "rob": stall_rob,
            "iq": stall_iq,
            "lq": stall_lq,
            "sq": stall_sq,
            "decode": stall_decode,
            "operand": stall_operand,
            "fu": stall_fu,
            "issue_bw": stall_issue_bw,
        },
        sync_commit_cycles=[int(commit_at[p]) for p in arrays.sync_pos],
        tracked_limiter_cycles=tracked,
    )


def _build_result(trace, arrays, corrects, image, config, commit_at,
                  stall_cycles, sync_commit_cycles,
                  tracked_limiter_cycles) -> SimResult:
    stats = SimStats()
    stats.uops = arrays.n
    stats.cycles = int(commit_at[-1]) if arrays.n else 0
    stats.branches = arrays.branches
    stats.mispredictions = sum(1 for c in corrects if not c)
    stats.loads = arrays.loads
    stats.stores = arrays.stores
    stats.fp_ops = arrays.fp_ops
    stats.complex_decodes = arrays.complex_decodes
    stats.ifetch_blocks = arrays.ifetch_blocks
    stats.mem_level_counts = dict(image.mem_level_counts)
    stats.sync_commit_cycles = sync_commit_cycles
    stats.stall_cycles = stall_cycles
    stats.tracked_limiter_cycles = tracked_limiter_cycles
    return SimResult(
        config_name=config.name,
        trace_name=trace.name,
        cycles=stats.cycles,
        frequency=config.frequency,
        stats=stats,
    )


# -- merged scalar path (config-unrolled code generation) ---------------------

#: Batch width at which the NumPy ``(N,)``-axis loop takes over from the
#: merged config-unrolled scalar loop inside :func:`_time_many`.  Below
#: it, per-uop NumPy dispatch overhead (~0.4us per vector op on short
#: arrays) exceeds the cost of N inlined scalar recurrences sharing one
#: trace walk; above it, the flat-gather vector loop's flatter per-uop
#: cost (and its independence from batch geometry — no per-geometry
#: code generation) wins out.  Internal to the kernel — the public
#: dispatch threshold between ``_time_one`` and ``_time_many`` remains
#: :func:`vector_min_width`.
CONFIG_AXIS_MIN = 48

#: Compiled merged-loop cache, keyed by the batch's timing geometry
#: (the per-config constants baked into the generated source).  Paper
#: sweeps reuse one geometry across every profile, so compilation
#: amortizes to a single ~5ms exec per sweep shape.
_MERGED_CACHE: Dict[tuple, object] = {}
_MERGED_CACHE_CAP = 16


def _merged_key(configs: Sequence[CoreConfig]) -> tuple:
    """The tuple of per-config constants the generated source depends on."""
    return tuple(
        (
            c.dispatch_width,
            c.commit_width,
            c.rob_entries,
            c.iq_entries,
            c.lq_entries,
            c.sq_entries,
            bool(c.hetero),
            max(1, c.branch_mispredict_cycles - FRONT_END_DEPTH),
            c.issue_width,
        )
        for c in configs
    )


def _merged_source(key: tuple) -> str:
    """Generate one fused scalar loop evaluating every config at once.

    The emitted function is a config-axis unrolling of :func:`_time_one`:
    one walk over the trace arrays (op code, producer distances, latency
    read once per uop instead of once per uop *per config*) drives N
    inlined copies of the timing recurrence whose widths, queue depths
    and refill constants are baked in as literals.  The issue-bandwidth
    and FU-pool occupancy maps are inlined as raw per-cycle dicts with
    the same first-fit walks, increments and prune schedule as
    :class:`~repro.uarch.ooo._FuPool` / ``_PerCycleBandwidth``, so the
    schedule and the tracked-cycle telemetry stay oracle-identical.
    """
    N = len(key)
    lines: List[str] = []
    a = lines.append
    js = range(N)
    a("def _merged(n, codes, src1, src2, lat_l, busy_l, corrects,")
    a("            load_pos, store_pos, pool_sizes, tables):")
    for j in js:
        a(f"    ld_{j}, fp_{j} = tables[{j}]")
        a(f"    pu_{j} = [dict() for _ in range({len(_POOL_SIZES)})]")
        a(f"    au_{j} = {{}}")
        a(f"    cp_{j} = [0] * n")
        a(f"    il_{j} = [0] * n")
        a(f"    cm_{j} = [0] * n")
        a(f"    fbr_{j} = rf_{j} = fc_{j} = fu_{j} = 0")
        a(f"    rc_{j} = ru_{j} = cc_{j} = cu_{j} = cl_{j} = 0")
        a(f"    lfp_{j} = -{FP_DIV_ISSUE_INTERVAL}")
        a(f"    sfi_{j} = sfr_{j} = srb_{j} = srob_{j} = siq_{j} = 0")
        a(f"    slq_{j} = ssq_{j} = sdc_{j} = sop_{j} = sfu_{j} = sbw_{j} = 0")
    a("    k_load = k_store = k_branch = k_block = 0")
    a(f"    prune_at = {_ooo.PRUNE_INTERVAL}")
    a("    for i in range(n):")
    a("        code = codes[i]")
    a(f"        if i % {FETCH_BLOCK_UOPS} == 0:")
    for j in js:
        a(f"            p = fp_{j}[k_block]")
        a(f"            b = fbr_{j}")
        a(f"            if rf_{j} > b:")
        a(f"                sfr_{j} += rf_{j} - b")
        a(f"                b = rf_{j}")
        a("            if p > 0:")
        a(f"                sfi_{j} += p")
        a("                b += p")
        a(f"            fbr_{j} = b")
    a("            k_block += 1")
    for j, (dw, _cw, rob, iqn, _lq, _sq, _het, _rf, _iw) in enumerate(key):
        a(f"        e = fbr_{j} if fbr_{j} >= rf_{j} else rf_{j}")
        a(f"        if e > fc_{j}:")
        a(f"            fc_{j} = e")
        a(f"            fu_{j} = 0")
        a(f"        if fu_{j} >= {dw * 2}:")
        a(f"            fc_{j} += 1")
        a(f"            fu_{j} = 0")
        a(f"        fu_{j} += 1")
        a(f"        e_{j} = fc_{j} + {FRONT_END_DEPTH}")
        a(f"        if i >= {rob}:")
        a(f"            g = cm_{j}[i - {rob}]")
        a(f"            if g > e_{j}:")
        a(f"                srob_{j} += g - e_{j}")
        a(f"                e_{j} = g")
        a(f"        if i >= {iqn}:")
        a(f"            g = il_{j}[i - {iqn}]")
        a(f"            if g > e_{j}:")
        a(f"                siq_{j} += g - e_{j}")
        a(f"                e_{j} = g")
    a(f"        if code == {_LOAD}:")
    for j, (_dw, _cw, _rob, _iq, lqn, _sq, _het, _rf, _iw) in enumerate(key):
        a(f"            if k_load >= {lqn}:")
        a(f"                g = cm_{j}[load_pos[k_load - {lqn}]]")
        a(f"                if g > e_{j}:")
        a(f"                    slq_{j} += g - e_{j}")
        a(f"                    e_{j} = g")
    a(f"        elif code == {_STORE}:")
    for j, (_dw, _cw, _rob, _iq, _lq, sqn, _het, _rf, _iw) in enumerate(key):
        a(f"            if k_store >= {sqn}:")
        a(f"                g = cm_{j}[store_pos[k_store - {sqn}]]")
        a(f"                if g > e_{j}:")
        a(f"                    ssq_{j} += g - e_{j}")
        a(f"                    e_{j} = g")
    if any(entry[6] for entry in key):
        a(f"        elif code == {_COMPLEX}:")
        for j, entry in enumerate(key):
            if entry[6]:
                a(f"            e_{j} += 1")
                a(f"            sdc_{j} += 1")
    for j, (dw, _cw, _rob, _iq, _lq, _sq, _het, _rf, _iw) in enumerate(key):
        a(f"        if e_{j} > rc_{j}:")
        a(f"            rc_{j} = e_{j}")
        a(f"            ru_{j} = 0")
        a(f"        if ru_{j} >= {dw}:")
        a(f"            rc_{j} += 1")
        a(f"            ru_{j} = 0")
        a(f"        ru_{j} += 1")
        a(f"        if rc_{j} > e_{j}:")
        a(f"            srb_{j} += rc_{j} - e_{j}")
        a(f"        rd_{j} = rc_{j} + 1")
    a("        d = src1[i]")
    a("        if d:")
    for j in js:
        a(f"            p = cp_{j}[i - d]")
        a(f"            if p > rd_{j}:")
        a(f"                rd_{j} = p")
    a("        d = src2[i]")
    a("        if d:")
    for j in js:
        a(f"            p = cp_{j}[i - d]")
        a(f"            if p > rd_{j}:")
        a(f"                rd_{j} = p")
    for j in js:
        a(f"        if rd_{j} > rc_{j} + 1:")
        a(f"            sop_{j} += rd_{j} - rc_{j} - 1")
    a(f"        if code == {_FP_DIV}:")
    for j in js:
        a(f"            g = lfp_{j} + {FP_DIV_ISSUE_INTERVAL}")
        a(f"            if g > rd_{j}:")
        a(f"                sfu_{j} += g - rd_{j}")
        a(f"                rd_{j} = g")
    a("        busy = busy_l[i]")
    a("        cnt = pool_sizes[code]")
    a("        if busy == 1:")
    for j in js:
        a(f"            d_ = pu_{j}[code]")
        a(f"            c_ = rd_{j}")
        a("            v = d_.get(c_, 0)")
        a("            while v >= cnt:")
        a("                c_ += 1")
        a("                v = d_.get(c_, 0)")
        a("            d_[c_] = v + 1")
        a(f"            st_{j} = c_")
    a("        else:")
    for j in js:
        a(f"            d_ = pu_{j}[code]")
        a(f"            c_ = rd_{j}")
        a("            while True:")
        a("                k = 0")
        a("                while k < busy and d_.get(c_ + k, 0) < cnt:")
        a("                    k += 1")
        a("                if k == busy:")
        a("                    break")
        a("                c_ += 1")
        a("            for k in range(busy):")
        a("                d_[c_ + k] = d_.get(c_ + k, 0) + 1")
        a(f"            st_{j} = c_")
    for j, (_dw, _cw, _rob, _iq, _lq, _sq, _het, _rf, iw) in enumerate(key):
        a(f"        if st_{j} > rd_{j}:")
        a(f"            sfu_{j} += st_{j} - rd_{j}")
        a(f"        c_ = st_{j}")
        a(f"        while au_{j}.get(c_, 0) >= {iw}:")
        a("            c_ += 1")
        a(f"        au_{j}[c_] = au_{j}.get(c_, 0) + 1")
        a(f"        if c_ > st_{j}:")
        a(f"            sbw_{j} += c_ - st_{j}")
        a(f"        il_{j}[i] = c_")
        a(f"        is_{j} = c_")
    a(f"        if code == {_LOAD}:")
    for j in js:
        a(f"            dn_{j} = is_{j} + ld_{j}[k_load]")
    a("            k_load += 1")
    a("        else:")
    a("            lat = lat_l[i]")
    for j in js:
        a(f"            dn_{j} = is_{j} + lat")
    a(f"            if code == {_BRANCH}:")
    a("                if not corrects[k_branch]:")
    for j, (_dw, _cw, _rob, _iq, _lq, _sq, _het, refill, _iw) \
            in enumerate(key):
        a(f"                    g = dn_{j} + {refill}")
        a(f"                    if g > rf_{j}:")
        a(f"                        rf_{j} = g")
    a("                k_branch += 1")
    a(f"            elif code == {_STORE}:")
    a("                k_store += 1")
    a(f"            elif code == {_FP_DIV}:")
    for j in js:
        a(f"                lfp_{j} = is_{j}")
    for j, (_dw, cw, _rob, _iq, _lq, _sq, _het, _rf, _iw) in enumerate(key):
        a(f"        cp_{j}[i] = dn_{j}")
        a(f"        t = dn_{j} + 1")
        a(f"        if t < cl_{j}:")
        a(f"            t = cl_{j}")
        a(f"        if t > cc_{j}:")
        a(f"            cc_{j} = t")
        a(f"            cu_{j} = 0")
        a(f"        if cu_{j} >= {cw}:")
        a(f"            cc_{j} += 1")
        a(f"            cu_{j} = 0")
        a(f"        cu_{j} += 1")
        a(f"        cm_{j}[i] = cc_{j}")
        a(f"        cl_{j} = cc_{j}")
    a("        if i >= prune_at:")
    a(f"            prune_at = i + {_ooo.PRUNE_INTERVAL}")
    for j in js:
        a(f"            w = rc_{j}")
        a(f"            au_{j} = {{c: v for c, v in au_{j}.items()"
          f" if c >= w}}")
        a(f"            pu_{j} = [{{c: v for c, v in d_.items() if c >= w}}"
          f" for d_ in pu_{j}]")
    a("    return [")
    for j in js:
        a(f"        (cm_{j}, {{")
        a(f"            'fetch_icache': sfi_{j},")
        a(f"            'fetch_redirect': sfr_{j},")
        a(f"            'rename_bw': srb_{j},")
        a(f"            'rob': srob_{j},")
        a(f"            'iq': siq_{j},")
        a(f"            'lq': slq_{j},")
        a(f"            'sq': ssq_{j},")
        a(f"            'decode': sdc_{j},")
        a(f"            'operand': sop_{j},")
        a(f"            'fu': sfu_{j},")
        a(f"            'issue_bw': sbw_{j},")
        a(f"        }}, len(au_{j}) + sum(map(len, pu_{j}))),")
    a("    ]")
    a("")
    return "\n".join(lines)


def _merged_fn(key: tuple):
    """Fetch (or compile and cache) the merged loop for one geometry."""
    fn = _MERGED_CACHE.get(key)
    if fn is None:
        namespace: Dict[str, object] = {}
        exec(compile(_merged_source(key), "<repro-kernel-merged>", "exec"),
             namespace)
        fn = namespace["_merged"]
        _MERGED_CACHE[key] = fn
        if len(_MERGED_CACHE) > _MERGED_CACHE_CAP:
            _MERGED_CACHE.pop(next(iter(_MERGED_CACHE)))
    return fn


def _time_merged(trace: Trace, arrays: TraceArrays,
                 corrects: Sequence[bool], image: MemoryImage,
                 configs: Sequence[CoreConfig],
                 noc_penalty: int = 0) -> List[SimResult]:
    """Evaluate a narrow batch through the merged config-unrolled loop."""
    fn = _merged_fn(_merged_key(configs))
    tables = [
        (
            _load_done_terms(config, image, noc_penalty).tolist(),
            _fetch_penalties(config, image).tolist(),
        )
        for config in configs
    ]
    rows = fn(arrays.n, arrays.codes, arrays.src1, arrays.src2, arrays.lat,
              arrays.busy, corrects, arrays.load_pos, arrays.store_pos,
              _POOL_SIZES, tables)
    results: List[SimResult] = []
    for config, (commit_at, stalls, tracked) in zip(configs, rows):
        results.append(_build_result(
            trace, arrays, corrects, image, config, commit_at,
            stall_cycles=stalls,
            sync_commit_cycles=[commit_at[p] for p in arrays.sync_pos],
            tracked_limiter_cycles=tracked,
        ))
    return results


# -- batched (N,) timing path -------------------------------------------------

#: Config-axis chunk bound for the vectorized path.  Splitting a very
#: wide batch keeps the ``(n, 5, chunk)`` history block cache-resident
#: and bounds peak memory for thousand-config Monte-Carlo sweeps without
#: changing results (configs are independent along the axis).
VECTOR_CHUNK = 64


def _time_many(trace: Trace, arrays: TraceArrays, corrects: Sequence[bool],
               image: MemoryImage, configs: Sequence[CoreConfig],
               noc_penalty: int = 0) -> List[SimResult]:
    """Evaluate the timing recurrences for all configs simultaneously.

    Per-config widths/latencies become a ``(N,)`` axis; the per-uop
    fetch/rename/issue/commit/completion history lives in one contiguous
    ``(n, 5, N)`` int64 block; the in-order limiters use the closed-form
    recurrence ``c[i] = max(e[i], c[i-1], c[i-w] + 1)``.  Only the
    out-of-order issue-bandwidth and FU occupancy maps (first-fit over
    sparse per-cycle dicts, no closed form) stay per-config scalar.

    The loop runs in two phases.  A *guarded* prefix (until every
    config's fetch/dispatch/commit/ROB/IQ window reaches back to row 0)
    uses masked gathers that tolerate out-of-range lookbacks.  The
    *lean* steady state then replaces the five per-uop window gathers
    with a single flat ``take`` through a precomputed offset vector
    advanced by ``5*N`` per row, works entirely in preallocated scratch
    buffers via in-place ufuncs (no per-uop temporaries), and writes the
    five state rows back with one contiguous copy.  That drops the
    per-uop vector-op count enough for this path to beat N decoded
    scalar loops at the batch widths the paper sweep produces.
    """
    N = len(configs)
    if N > VECTOR_CHUNK:
        results: List[SimResult] = []
        for lo in range(0, N, VECTOR_CHUNK):
            results.extend(_time_many(trace, arrays, corrects, image,
                                      configs[lo:lo + VECTOR_CHUNK],
                                      noc_penalty))
        return results
    if 0 < N < CONFIG_AXIS_MIN:
        # Narrow batches: per-uop NumPy dispatch overhead on short
        # ``(N,)`` arrays loses to N inlined scalar recurrences sharing
        # one trace walk — route through the merged unrolled loop.
        return _time_merged(trace, arrays, corrects, image, configs,
                            noc_penalty)
    n = arrays.n
    int_ = np.int64
    cols = np.arange(N)
    codes = arrays.codes
    src1 = arrays.src1
    src2 = arrays.src2
    lat_l = arrays.lat
    busy_l = arrays.busy

    disp = np.fromiter((c.dispatch_width for c in configs), int_, N)
    fetch_w = disp * 2
    commit_w = np.fromiter((c.commit_width for c in configs), int_, N)
    rob = np.fromiter((c.rob_entries for c in configs), int_, N)
    iq = np.fromiter((c.iq_entries for c in configs), int_, N)
    lq = np.fromiter((c.lq_entries for c in configs), int_, N)
    sq = np.fromiter((c.sq_entries for c in configs), int_, N)
    hetero = np.fromiter((1 if c.hetero else 0 for c in configs), int_, N)
    refill = np.maximum(
        1,
        np.fromiter((c.branch_mispredict_cycles for c in configs), int_, N)
        - FRONT_END_DEPTH,
    )
    # (n_loads, N) / (n_blocks, N) latency terms from the shared image.
    # Fetch penalties are pre-clipped to >= 0 once (the scalar loop's
    # ``if penalty > 0`` test), so the hot loop adds them unconditionally.
    load_term = np.stack(
        [_load_done_terms(c, image, noc_penalty) for c in configs], axis=1
    ) if arrays.loads else np.zeros((0, N), int_)
    fetch_pen = np.maximum(np.stack(
        [_fetch_penalties(c, image) for c in configs], axis=1
    ), 0) if arrays.ifetch_blocks else np.zeros((0, N), int_)

    # One contiguous history block; slot order fetch/rename/issue/
    # commit/completion.  The named (n, N) views keep the guarded phase
    # and the result assembly readable; the lean phase gathers through
    # the flat view ``F`` instead.
    H = np.zeros((n, 5, N), int_)
    fetch_c = H[:, 0, :]
    rename_c = H[:, 1, :]
    issue_np = H[:, 2, :]
    commit_np = H[:, 3, :]
    completion = H[:, 4, :]
    F = H.reshape(-1)

    issue_objs = [_PerCycleBandwidth(c.issue_width) for c in configs]
    pool_rows = [[_FuPool(count) for count in _POOL_SIZES] for _ in configs]

    zeros = np.zeros(N, int_)
    redirect_free = zeros.copy()
    fetch_block_ready = zeros.copy()
    last_fp_div = np.full(N, -FP_DIV_ISSUE_INTERVAL, int_)
    rename = zeros.copy()
    stall_fetch_icache = zeros.copy()
    stall_fetch_redirect = zeros.copy()
    stall_rename_bw = zeros.copy()
    stall_rob = zeros.copy()
    stall_iq = zeros.copy()
    stall_lq = zeros.copy()
    stall_sq = zeros.copy()
    stall_decode = zeros.copy()
    stall_operand = zeros.copy()
    stall_fu = zeros.copy()
    stall_issue_bw = zeros.copy()

    min_fetch_w = int(fetch_w.min()) if N else 0
    min_disp = int(disp.min()) if N else 0
    min_commit = int(commit_w.min()) if N else 0
    min_rob = int(rob.min()) if N else 0
    min_iq = int(iq.min()) if N else 0
    min_lq = int(lq.min()) if N else 0
    min_sq = int(sq.min()) if N else 0
    max_lq = int(lq.max()) if N else 0
    max_sq = int(sq.max()) if N else 0

    # First row where every per-uop window gather reaches back to a
    # written row under every config — the guarded/lean phase boundary.
    i_lean = min(n, int(max(fetch_w.max(), disp.max(), commit_w.max(),
                            rob.max(), iq.max()))) if N else n

    prune_interval = _ooo.PRUNE_INTERVAL
    prune_at = prune_interval
    k_load = k_store = k_branch = k_block = 0

    LOAD = _LOAD
    STORE = _STORE
    BRANCH = _BRANCH
    COMPLEX = _COMPLEX
    FP_DIV = _FP_DIV
    load_pos_np = arrays.load_pos_np
    store_pos_np = arrays.store_pos_np

    for i in range(i_lean):
        code = codes[i]
        # ---- fetch ---------------------------------------------------------
        if i % FETCH_BLOCK_UOPS == 0:
            pos_pen = fetch_pen[k_block]  # pre-clipped >= 0
            k_block += 1
            base = fetch_block_ready
            advance = np.where(redirect_free > base, redirect_free - base, 0)
            stall_fetch_redirect += advance
            stall_fetch_icache += pos_pen
            fetch_block_ready = base + advance + pos_pen
        earliest = np.maximum(fetch_block_ready, redirect_free)
        if i:
            fetched = np.maximum(earliest, fetch_c[i - 1])
        else:
            fetched = earliest
        if i >= min_fetch_w:
            back = i - fetch_w
            gathered = fetch_c[np.maximum(back, 0), cols] + 1
            fetched = np.maximum(fetched, np.where(back >= 0, gathered, 0))
        fetch_c[i] = fetched

        # ---- rename/dispatch gates -----------------------------------------
        earliest = fetched + FRONT_END_DEPTH
        if i >= min_rob:
            back = i - rob
            gate = commit_np[np.maximum(back, 0), cols]
            add = np.where((back >= 0) & (gate > earliest), gate - earliest, 0)
            stall_rob += add
            earliest = earliest + add
        if i >= min_iq:
            back = i - iq
            gate = issue_np[np.maximum(back, 0), cols]
            add = np.where((back >= 0) & (gate > earliest), gate - earliest, 0)
            stall_iq += add
            earliest = earliest + add
        if code == LOAD:
            if k_load >= min_lq:
                back = k_load - lq
                rows = load_pos_np[np.maximum(back, 0)]
                gate = commit_np[rows, cols]
                add = np.where((back >= 0) & (gate > earliest),
                               gate - earliest, 0)
                stall_lq += add
                earliest = earliest + add
        elif code == STORE:
            if k_store >= min_sq:
                back = k_store - sq
                rows = store_pos_np[np.maximum(back, 0)]
                gate = commit_np[rows, cols]
                add = np.where((back >= 0) & (gate > earliest),
                               gate - earliest, 0)
                stall_sq += add
                earliest = earliest + add
        elif code == COMPLEX:
            stall_decode += hetero
            earliest = earliest + hetero
        if i:
            renamed = np.maximum(earliest, rename_c[i - 1])
        else:
            renamed = earliest
        if i >= min_disp:
            back = i - disp
            gathered = rename_c[np.maximum(back, 0), cols] + 1
            renamed = np.maximum(renamed, np.where(back >= 0, gathered, 0))
        rename_c[i] = renamed
        stall_rename_bw += renamed - earliest
        rename = renamed

        # ---- register readiness --------------------------------------------
        base_ready = renamed + 1
        ready = base_ready
        dist = src1[i]
        if dist:
            ready = np.maximum(ready, completion[i - dist])
        dist = src2[i]
        if dist:
            ready = np.maximum(ready, completion[i - dist])
        stall_operand += ready - base_ready

        # ---- issue ---------------------------------------------------------
        if code == FP_DIV:
            refractory = last_fp_div + FP_DIV_ISSUE_INTERVAL
            add = np.where(refractory > ready, refractory - ready, 0)
            stall_fu += add
            ready = ready + add
        busy = busy_l[i]
        ready_list = ready.tolist()
        issue_list = [0] * N
        for j in range(N):
            ready_j = ready_list[j]
            start = pool_rows[j][code].reserve(ready_j, busy)
            if start > ready_j:
                stall_fu[j] += start - ready_j
            issued = issue_objs[j].allocate(start)
            if issued > start:
                stall_issue_bw[j] += issued - start
            issue_list[j] = issued
        issue_row = np.array(issue_list, int_)
        issue_np[i] = issue_row
        if code == FP_DIV:
            last_fp_div = issue_row

        # ---- execute -------------------------------------------------------
        done = issue_row + lat_l[i]
        if code == LOAD:
            done = issue_row + load_term[k_load]
            k_load += 1
        elif code == STORE:
            k_store += 1
        elif code == BRANCH:
            if not corrects[k_branch]:
                redirect_free = np.maximum(redirect_free, done + refill)
            k_branch += 1
        completion[i] = done

        # ---- commit --------------------------------------------------------
        if i:
            target = np.maximum(done + 1, commit_np[i - 1])
        else:
            target = done + 1
        if i >= min_commit:
            back = i - commit_w
            gathered = commit_np[np.maximum(back, 0), cols] + 1
            target = np.maximum(target, np.where(back >= 0, gathered, 0))
        commit_np[i] = target

        # ---- bookkeeping ---------------------------------------------------
        if i >= prune_at:
            prune_at = i + prune_interval
            rename_list = rename.tolist()
            for j in range(N):
                watermark = rename_list[j]
                issue_objs[j].prune(watermark)
                for pool in pool_rows[j]:
                    pool.prune(watermark)

    # ---- lean steady state --------------------------------------------------
    # Every window now reaches back to a written row, so the five gate
    # gathers collapse into one flat ``take`` through ``idx`` (advanced
    # by ``5*N`` per row) and every arithmetic step runs in-place on
    # preallocated buffers.  ``fu_extra``/``bw_extra`` accumulate the
    # issue-loop stalls as plain ints (cheaper than per-element ndarray
    # writes); they merge into the stall vectors at result build.
    fu_extra = [0] * N
    bw_extra = [0] * N
    if i_lean < n:
        FIVE_N = 5 * N
        codes_np = np.asarray(codes, dtype=int_)
        # Gather offsets (gather g, config j) -> flat(i - r_g[j], slot, j)
        # for row i = 0; ADD applies the limiter ``+ 1`` terms in one op.
        OFF = np.empty(FIVE_N, int_)
        OFF[0 * N:1 * N] = -fetch_w * FIVE_N + (0 * N + cols)   # fetch[i-fw]
        OFF[1 * N:2 * N] = -rob * FIVE_N + (3 * N + cols)       # commit[i-rob]
        OFF[2 * N:3 * N] = -iq * FIVE_N + (2 * N + cols)        # issue[i-iq]
        OFF[3 * N:4 * N] = -disp * FIVE_N + (1 * N + cols)      # rename[i-dw]
        OFF[4 * N:5 * N] = -commit_w * FIVE_N + (3 * N + cols)  # commit[i-cw]
        ADD = np.array([[1], [0], [0], [1], [1]], int_)
        idx = OFF + (i_lean - 1) * FIVE_N
        G = np.empty(FIVE_N, int_)
        G2 = G.reshape(5, N)
        gf, gr, gi, gd, gc = G2

        # Per-queue gate tables: flat commit-slot indices of the load/
        # store that must leave the LQ/SQ, valid once k >= max_lq/sq.
        lq_idx = sq_idx = None
        if arrays.loads > max_lq:
            lq_back = np.arange(arrays.loads, dtype=int_)[:, None] - lq
            lq_idx = (load_pos_np[np.maximum(lq_back, 0)] * FIVE_N
                      + (3 * N + cols))
        if arrays.stores > max_sq:
            sq_back = np.arange(arrays.stores, dtype=int_)[:, None] - sq
            sq_idx = (store_pos_np[np.maximum(sq_back, 0)] * FIVE_N
                      + (3 * N + cols))

        # State rows for the current uop (previous uop's on entry) and
        # scratch buffers; ``fb`` caches max(fetch_block_ready,
        # redirect_free), refreshed at block boundaries and mispredicts.
        S = H[i_lean - 1].copy() if i_lean else np.zeros((5, N), int_)
        S0, S1, S2, S3, S4 = S
        fb = np.maximum(fetch_block_ready, redirect_free)
        E = np.empty(N, int_)
        R = np.empty(N, int_)
        T = np.empty(N, int_)
        GL = np.empty(N, int_)

        reserve_rows = [[pool.reserve for pool in row] for row in pool_rows]
        allocs = [obj.allocate for obj in issue_objs]
        issue_list = [0] * N
        np_add = np.add
        np_max = np.maximum
        np_sub = np.subtract
        np_copyto = np.copyto
        take = F.take
        hetero_any = bool(hetero.any())
        FED = FRONT_END_DEPTH

        for i in range(i_lean, n):
            code = codes[i]
            np_add(idx, FIVE_N, out=idx)
            take(idx, out=G)
            np_add(G2, ADD, out=G2)
            # ---- fetch -----------------------------------------------------
            if i % FETCH_BLOCK_UOPS == 0:
                np_sub(redirect_free, fetch_block_ready, out=T)
                np_max(T, 0, out=T)
                np_add(stall_fetch_redirect, T, out=stall_fetch_redirect)
                np_max(fetch_block_ready, redirect_free,
                       out=fetch_block_ready)
                pen = fetch_pen[k_block]
                k_block += 1
                np_add(stall_fetch_icache, pen, out=stall_fetch_icache)
                np_add(fetch_block_ready, pen, out=fetch_block_ready)
                np_copyto(fb, fetch_block_ready)
            np_max(gf, S0, out=S0)
            np_max(S0, fb, out=S0)
            # ---- rename/dispatch gates (stalls post-passed) ----------------
            np_add(S0, FED, out=E)
            np_max(E, gr, out=E)
            np_max(E, gi, out=E)
            if code == LOAD:
                if k_load >= max_lq:
                    take(lq_idx[k_load], out=GL)
                    np_max(E, GL, out=E)
                elif k_load >= min_lq:
                    back = k_load - lq
                    gate = commit_np[load_pos_np[np.maximum(back, 0)], cols]
                    np_max(E, np.where(back >= 0, gate, 0), out=E)
            elif code == STORE:
                if k_store >= max_sq:
                    take(sq_idx[k_store], out=GL)
                    np_max(E, GL, out=E)
                elif k_store >= min_sq:
                    back = k_store - sq
                    gate = commit_np[store_pos_np[np.maximum(back, 0)], cols]
                    np_max(E, np.where(back >= 0, gate, 0), out=E)
            elif code == COMPLEX:
                if hetero_any:
                    np_add(E, hetero, out=E)
            # ---- rename limiter --------------------------------------------
            np_max(gd, S1, out=S1)
            np_max(S1, E, out=S1)
            # ---- register readiness ----------------------------------------
            np_add(S1, 1, out=R)
            d1 = src1[i]
            d2 = src2[i]
            if d1:
                np_max(R, completion[i - d1], out=R)
            if d2:
                np_max(R, completion[i - d2], out=R)
            # ---- issue -----------------------------------------------------
            if code == FP_DIV:
                # Refractory stall stays in-loop: FP divides are rare and
                # the lift depends on the previous divide's issue cycle.
                np_add(last_fp_div, FP_DIV_ISSUE_INTERVAL, out=T)
                np_sub(T, R, out=T)
                np_max(T, 0, out=T)
                np_add(stall_fu, T, out=stall_fu)
                np_add(R, T, out=R)
            busy = busy_l[i]
            ready_list = R.tolist()
            for j in range(N):
                ready_j = ready_list[j]
                start = reserve_rows[j][code](ready_j, busy)
                if start > ready_j:
                    fu_extra[j] += start - ready_j
                issued = allocs[j](start)
                if issued > start:
                    bw_extra[j] += issued - start
                issue_list[j] = issued
            S2[:] = issue_list
            # ---- execute ---------------------------------------------------
            if code == LOAD:
                np_add(S2, load_term[k_load], out=S4)
                k_load += 1
            else:
                np_add(S2, lat_l[i], out=S4)
                if code == BRANCH:
                    if not corrects[k_branch]:
                        np_add(S4, refill, out=T)
                        np_max(redirect_free, T, out=redirect_free)
                        np_max(fb, redirect_free, out=fb)
                    k_branch += 1
                elif code == STORE:
                    k_store += 1
                elif code == FP_DIV:
                    np_copyto(last_fp_div, S2)
            # ---- commit ----------------------------------------------------
            np_add(S4, 1, out=T)
            np_max(T, gc, out=T)
            np_max(T, S3, out=S3)
            # ---- writeback / bookkeeping -----------------------------------
            H[i] = S
            if i >= prune_at:
                prune_at = i + prune_interval
                watermarks = S1.tolist()
                for j in range(N):
                    watermark = watermarks[j]
                    issue_objs[j].prune(watermark)
                    for pool in pool_rows[j]:
                        pool.prune(watermark)

        # ---- stall reconstruction over the lean range ----------------------
        # Every gate input the sequential loop saw is preserved in H, so
        # the rename-stage stall attribution is a pure function of the
        # history — recomputed here with whole-range (M, N) operations
        # instead of per-uop arithmetic in the hot loop.  The per-uop
        # order of gates (ROB -> IQ -> LQ/SQ/decode -> rename bandwidth
        # -> operands) is replayed exactly.
        lean = np.arange(i_lean, n, dtype=int_)
        E2 = fetch_c[i_lean:] + FED
        delta = commit_np[lean[:, None] - rob, cols]
        np.subtract(delta, E2, out=delta)
        np.maximum(delta, 0, out=delta)
        stall_rob += delta.sum(axis=0)
        np.add(E2, delta, out=E2)
        delta = issue_np[lean[:, None] - iq, cols]
        np.subtract(delta, E2, out=delta)
        np.maximum(delta, 0, out=delta)
        stall_iq += delta.sum(axis=0)
        np.add(E2, delta, out=E2)
        if arrays.loads:
            k0 = int(np.searchsorted(load_pos_np, i_lean))
            ks = np.arange(k0, arrays.loads, dtype=int_)
            if ks.size:
                back = ks[:, None] - lq
                gate = commit_np[load_pos_np[np.maximum(back, 0)], cols]
                rows = load_pos_np[k0:] - i_lean
                held = E2[rows]
                grow = np.where((back >= 0) & (gate > held), gate - held, 0)
                stall_lq += grow.sum(axis=0)
                E2[rows] = held + grow
        if arrays.stores:
            k0 = int(np.searchsorted(store_pos_np, i_lean))
            ks = np.arange(k0, arrays.stores, dtype=int_)
            if ks.size:
                back = ks[:, None] - sq
                gate = commit_np[store_pos_np[np.maximum(back, 0)], cols]
                rows = store_pos_np[k0:] - i_lean
                held = E2[rows]
                grow = np.where((back >= 0) & (gate > held), gate - held, 0)
                stall_sq += grow.sum(axis=0)
                E2[rows] = held + grow
        if hetero_any:
            rows = np.nonzero(codes_np[i_lean:] == COMPLEX)[0]
            if rows.size:
                stall_decode += hetero * int(rows.size)
                E2[rows] += hetero
        ren = rename_c[i_lean:]
        stall_rename_bw += (ren - E2).sum(axis=0)
        s1 = np.asarray(src1[i_lean:], dtype=int_)
        s2 = np.asarray(src2[i_lean:], dtype=int_)
        rows = np.nonzero((s1 > 0) | (s2 > 0))[0]
        if rows.size:
            pos = rows + i_lean
            a1 = s1[rows]
            a2 = s2[rows]
            produced = np.where((a1 > 0)[:, None], completion[pos - a1], 0)
            np.maximum(
                produced,
                np.where((a2 > 0)[:, None], completion[pos - a2], 0),
                out=produced,
            )
            np.subtract(produced, ren[rows] + 1, out=produced)
            np.maximum(produced, 0, out=produced)
            stall_operand += produced.sum(axis=0)

    results: List[SimResult] = []
    sync_matrix = commit_np[arrays.sync_pos] if arrays.sync_pos else None
    for j, config in enumerate(configs):
        tracked = issue_objs[j].tracked_cycles + sum(
            pool.tracked_cycles for pool in pool_rows[j]
        )
        sync_cycles = (
            [int(v) for v in sync_matrix[:, j]] if sync_matrix is not None
            else []
        )
        results.append(_build_result(
            trace, arrays, corrects, image, config, commit_np[:, j],
            stall_cycles={
                "fetch_icache": int(stall_fetch_icache[j]),
                "fetch_redirect": int(stall_fetch_redirect[j]),
                "rename_bw": int(stall_rename_bw[j]),
                "rob": int(stall_rob[j]),
                "iq": int(stall_iq[j]),
                "lq": int(stall_lq[j]),
                "sq": int(stall_sq[j]),
                "decode": int(stall_decode[j]),
                "operand": int(stall_operand[j]),
                "fu": int(stall_fu[j]) + fu_extra[j],
                "issue_bw": int(stall_issue_bw[j]) + bw_extra[j],
            },
            sync_commit_cycles=sync_cycles,
            tracked_limiter_cycles=tracked,
        ))
    return results


# -- public entry points ------------------------------------------------------


def simulate_core(trace: Trace, config: CoreConfig, image: MemoryImage,
                  noc_penalty: int = 0) -> SimResult:
    """Time one (trace, config) pair against a prebuilt memory image
    (the multicore batch driver's per-core primitive)."""
    return _time_one(trace, decode(trace), branch_outcomes(trace), image,
                     config, noc_penalty)


def run_trace_batch(configs: Sequence[CoreConfig], trace: Trace,
                    min_vector_width: Optional[int] = None,
                    stats_out: Optional[dict] = None) -> List[SimResult]:
    """Simulate ``trace`` under every config in one batched evaluation.

    Cycle-exact against ``run_trace(config, trace)`` for each config:
    the trace is decoded once, the predictor replayed once, the caches
    replayed once per L2 geometry, and only the timing recurrences run
    per configuration — via the NumPy ``(N,)`` path for groups of at
    least ``min_vector_width`` configs (default
    ``$REPRO_KERNEL_VECTOR_MIN`` or :data:`DEFAULT_VECTOR_MIN`), else
    via the tight scalar loop.  Results come back in config order.
    """
    configs = list(configs)
    if not configs:
        return []
    threshold = (min_vector_width if min_vector_width is not None
                 else vector_min_width())
    arrays = decode(trace)
    corrects = branch_outcomes(trace)
    results: List[Optional[SimResult]] = [None] * len(configs)
    groups: Dict[bool, List[int]] = {}
    for index, config in enumerate(configs):
        groups.setdefault(config.shared_l2, []).append(index)
    vectorized_groups = scalar_groups = 0
    for indices in groups.values():
        image = replay_memory(trace, configs[indices[0]])
        if len(indices) >= threshold:
            vectorized_groups += 1
            batch = _time_many(trace, arrays, corrects, image,
                               [configs[k] for k in indices])
            for index, result in zip(indices, batch):
                results[index] = result
        else:
            scalar_groups += 1
            for index in indices:
                results[index] = _time_one(trace, arrays, corrects, image,
                                           configs[index])
    if stats_out is not None:
        stats_out["vectorized_groups"] = (
            stats_out.get("vectorized_groups", 0) + vectorized_groups
        )
        stats_out["scalar_groups"] = (
            stats_out.get("scalar_groups", 0) + scalar_groups
        )
    return results


__all__ = [
    "CONFIG_AXIS_MIN",
    "DEFAULT_VECTOR_MIN",
    "MemoryImage",
    "TraceArrays",
    "branch_outcomes",
    "calibrate",
    "decode",
    "kernel_enabled",
    "replay_memory",
    "run_trace_batch",
    "save_tuning",
    "simulate_core",
    "tuned_vector_min",
    "tuning_path",
    "vector_min_width",
]
