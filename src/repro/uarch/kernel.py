"""Batched structure-of-arrays timing kernel.

Every figure/table sweep re-simulates the *same trace* under
configurations that differ only in latencies, widths and frequency.  The
scalar :class:`~repro.uarch.ooo.OutOfOrderCore` interleaves three kinds
of work per micro-op:

1. **trace decoding** — attribute lookups on :class:`MicroOp` objects,
2. **microarchitectural state that is configuration-independent** — the
   branch predictor outcome and the cache level each access is served
   from depend only on the access *sequence* and the L2 geometry
   (``shared_l2`` is the single config knob that changes cache contents;
   per-level latencies are pure table lookups),
3. **timing recurrences** — the only part that actually varies per
   configuration.

This kernel factors the three apart.  A trace is decoded **once** into
flat arrays (op class codes, producer distances, FU latencies); the
predictor and cache hierarchy are replayed **once per cache geometry**
into per-access level/outcome arrays; and the timing recurrences are
then evaluated per configuration against those arrays — either with a
tight decoded scalar loop (no cache/predictor/decode work left in it) or,
for wide batches, with the issue/execute/commit recurrences broadcast
over a ``(N,)`` configuration axis in NumPy.  The in-order width
limiters vectorize exactly via the closed form

    ``c[i] = max(e[i], c[i-1], c[i-width] + 1)``

(the cycle of the i-th allocation of a ``_WidthLimiter`` fed earliest
cycles ``e``); the out-of-order issue/FU occupancy maps keep their exact
first-fit semantics per configuration.

:func:`run_trace_batch` is the public entry point; it is **cycle-exact**
against the scalar oracle — same ``SimResult``, same stats, same stall
attribution — which the property tests assert op-for-op.  The scalar
:meth:`OutOfOrderCore.run` remains the reference implementation (the
same oracle pattern as the thermal solver's reference path).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.configs import CoreConfig
from repro.uarch import ooo as _ooo
from repro.uarch.bpred import TournamentPredictor
from repro.uarch.cache import (
    PREFETCH_DEGREE,
    CacheHierarchy,
    CoherenceDirectory,
)
from repro.uarch.isa import (
    FP_DIV_ISSUE_INTERVAL,
    FU_POOLS,
    OP_LATENCY,
    OpClass,
    Trace,
)
from repro.uarch.ooo import (
    FETCH_BLOCK_UOPS,
    FRONT_END_DEPTH,
    SimResult,
    SimStats,
    _FuPool,
    _PerCycleBandwidth,
)

#: Batch width at which the NumPy ``(N,)`` path beats N tight scalar
#: loops.  Small-array overhead (~0.5-1us per vector op, ~25 ops per
#: uop) loses to a ~1.5us/uop Python loop until the batch is wide;
#: override with ``$REPRO_KERNEL_VECTOR_MIN``.
DEFAULT_VECTOR_MIN = 16

#: Stable integer encoding of :class:`OpClass` (SoA op-code arrays).
_OP_ORDER = tuple(OpClass)
_CODE = {op: index for index, op in enumerate(_OP_ORDER)}
_LOAD = _CODE[OpClass.LOAD]
_STORE = _CODE[OpClass.STORE]
_BRANCH = _CODE[OpClass.BRANCH]
_COMPLEX = _CODE[OpClass.COMPLEX]
_SYNC = _CODE[OpClass.SYNC]
_DIV = _CODE[OpClass.DIV]
_FP_DIV = _CODE[OpClass.FP_DIV]
_FP_ADD = _CODE[OpClass.FP_ADD]
_FP_MUL = _CODE[OpClass.FP_MUL]
_LAT = tuple(OP_LATENCY[op] for op in _OP_ORDER)
_POOL_SIZES = tuple(FU_POOLS[op] for op in _OP_ORDER)

#: Memory levels in fixed order; replay stores per-access level codes.
_LEVELS = ("L1", "L2", "L3", "DRAM")


def kernel_enabled() -> bool:
    """Whether the engine should route batches through this kernel
    (``$REPRO_KERNEL=0`` disables it; the scalar oracle runs instead)."""
    value = os.environ.get("REPRO_KERNEL", "1").strip().lower()
    return value not in ("0", "false", "off", "no")


def vector_min_width() -> int:
    """Minimum batch width for the NumPy ``(N,)`` path (env-tunable)."""
    raw = os.environ.get("REPRO_KERNEL_VECTOR_MIN", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_VECTOR_MIN


# -- SoA decode ---------------------------------------------------------------


class TraceArrays:
    """Flat, configuration-independent decode of a trace's measured region."""

    __slots__ = (
        "n", "codes", "src1", "src2", "lat", "busy",
        "load_pos", "store_pos", "sync_pos", "load_pos_np", "store_pos_np",
        "loads", "stores", "branches", "fp_ops", "complex_decodes",
        "ifetch_blocks",
    )

    def __init__(self, trace: Trace) -> None:
        ops = trace.ops[trace.warmup_ops:]
        n = len(ops)
        self.n = n
        codes = [0] * n
        src1 = [0] * n
        src2 = [0] * n
        lat = [0] * n
        busy = [0] * n
        load_pos: List[int] = []
        store_pos: List[int] = []
        sync_pos: List[int] = []
        branches = fp_ops = complex_decodes = 0
        code_of = _CODE
        for i, uop in enumerate(ops):
            code = code_of[uop.op]
            codes[i] = code
            # A producer distance beyond the measured prefix never gates
            # (the oracle's ``dist <= i`` check); encode it as "ready".
            dist = uop.src1
            if dist is not None and dist <= i:
                src1[i] = dist
            dist = uop.src2
            if dist is not None and dist <= i:
                src2[i] = dist
            latency = _LAT[code]
            lat[i] = latency
            # Table 9: only the divides block their unit for the full
            # latency; everything else is pipelined.
            busy[i] = latency if (code == _DIV or code == _FP_DIV) else 1
            if code == _LOAD:
                load_pos.append(i)
            elif code == _STORE:
                store_pos.append(i)
            elif code == _BRANCH:
                branches += 1
            elif code == _COMPLEX:
                complex_decodes += 1
            elif code == _SYNC:
                sync_pos.append(i)
            elif code == _FP_ADD or code == _FP_MUL or code == _FP_DIV:
                fp_ops += 1
        self.codes = codes
        self.src1 = src1
        self.src2 = src2
        self.lat = lat
        self.busy = busy
        self.load_pos = load_pos
        self.store_pos = store_pos
        self.sync_pos = sync_pos
        self.load_pos_np = np.asarray(load_pos, dtype=np.int64)
        self.store_pos_np = np.asarray(store_pos, dtype=np.int64)
        self.loads = len(load_pos)
        self.stores = len(store_pos)
        self.branches = branches
        self.fp_ops = fp_ops
        self.complex_decodes = complex_decodes
        self.ifetch_blocks = (n + FETCH_BLOCK_UOPS - 1) // FETCH_BLOCK_UOPS


class MemoryImage:
    """Per-geometry replay outcome: which level served every access.

    The cache hierarchy's hit/miss/level sequence depends on the
    configuration only through ``shared_l2`` (the sole geometry knob in
    :class:`CacheHierarchy`); per-level *latencies* are pure config
    lookups applied afterwards.  The coherence ``remote`` flags depend
    on the access order alone.
    """

    __slots__ = ("fetch_levels", "load_levels", "load_remote", "any_remote",
                 "mem_level_counts")

    def __init__(self, fetch_levels, load_levels, load_remote,
                 mem_level_counts) -> None:
        self.fetch_levels = np.asarray(fetch_levels, dtype=np.int64)
        self.load_levels = np.asarray(load_levels, dtype=np.int64)
        self.load_remote = np.asarray(load_remote, dtype=np.int64)
        self.any_remote = bool(self.load_remote.any()) if load_remote else False
        self.mem_level_counts = mem_level_counts


def _kernel_state(trace: Trace) -> dict:
    """Decode/replay memo attached to the trace object itself (a trace
    is immutable once generated, so its decode never invalidates)."""
    state = getattr(trace, "_kernel_state", None)
    if state is None:
        state = {"images": {}}
        trace._kernel_state = state
    return state


def decode(trace: Trace) -> TraceArrays:
    """SoA decode of the measured region, memoized on the trace."""
    state = _kernel_state(trace)
    arrays = state.get("arrays")
    if arrays is None:
        arrays = TraceArrays(trace)
        state["arrays"] = arrays
    return arrays


def branch_outcomes(trace: Trace) -> List[bool]:
    """Per-branch predictor outcomes for the measured region, memoized.

    The tournament predictor is fully configuration-independent, so the
    warmup-train + measured-predict replay is a pure function of the
    trace.
    """
    state = _kernel_state(trace)
    corrects = state.get("branches")
    if corrects is None:
        predictor = TournamentPredictor()
        predict_and_train = predictor.predict_and_train
        ops = trace.ops
        warmup = trace.warmup_ops
        BRANCH = OpClass.BRANCH
        for i in range(warmup):
            uop = ops[i]
            if uop.op is BRANCH:
                predict_and_train(uop.pc, uop.taken)
        corrects = []
        for i in range(warmup, len(ops)):
            uop = ops[i]
            if uop.op is BRANCH:
                corrects.append(predict_and_train(uop.pc, uop.taken))
        state["branches"] = corrects
    return corrects


def _level_walker(cache):
    """Hit/miss-only access closure over one cache level's raw tag lists.

    Replay needs the serving *level*; latencies are per-config lookups
    applied later.  Walking the per-set lists directly skips the
    ``AccessResult`` allocation and hit/miss bookkeeping of
    :meth:`SetAssociativeCache.access` — the hierarchy is replay-private,
    so its counters are never read.  Build walkers only *after*
    ``preload`` (which may swap the ``_lines`` object wholesale).
    """
    lines = cache._lines
    sets = cache.sets
    ways = cache.ways
    line_bytes = cache.line_bytes

    def walk(address: int) -> bool:
        tag = address // line_bytes
        line = lines[tag % sets]
        if tag in line:
            line.remove(tag)
            line.append(tag)
            return True
        line.append(tag)
        if len(line) > ways:
            line.pop(0)
        return False

    return walk


def replay_memory(trace: Trace, donor_config: CoreConfig, core_id: int = 0,
                  coherence: Optional[CoherenceDirectory] = None,
                  noc_penalty: int = 0) -> MemoryImage:
    """Replay preload + warmup + measured accesses through the real
    cache hierarchy (and coherence directory, when given), recording the
    level that served each instruction block and each load.

    The donor config only contributes its cache *geometry*
    (``shared_l2``); single-core images are memoized on the trace per
    geometry.  Multicore replays are coupled across cores through the
    shared directory, so their caller sequences and memoizes them.
    """
    single = coherence is None
    if single:
        images: Dict[bool, MemoryImage] = _kernel_state(trace)["images"]
        image = images.get(donor_config.shared_l2)
        if image is not None:
            return image
    caches = CacheHierarchy(donor_config, core_id, None)
    if trace.resident_data or trace.resident_code:
        caches.preload(trace.resident_data, trace.resident_code)
    ops = trace.ops
    warmup = trace.warmup_ops
    LOAD = OpClass.LOAD
    STORE = OpClass.STORE
    il1 = _level_walker(caches.il1)
    dl1 = _level_walker(caches.dl1)
    l2 = _level_walker(caches.l2)
    l3 = _level_walker(caches.l3)
    l2_line = caches.l2.line_bytes
    prefetch_spans = tuple(
        ahead * l2_line for ahead in range(1, PREFETCH_DEGREE + 1)
    )
    account = coherence.account if coherence is not None else None

    def fetch_code(address: int) -> int:
        """Level code of an instruction fetch (IL1 -> L2 -> L3 -> DRAM)."""
        if il1(address):
            return 0
        if l2(address):
            return 1
        if l3(address):
            return 2
        return 3

    def data_code(address: int) -> int:
        """Level code of a data access, including the L2-miss stream
        prefetch touches, in :meth:`CacheHierarchy.data_access` order."""
        if dl1(address):
            return 0
        if l2(address):
            return 1
        for span in prefetch_spans:
            next_line = address + span
            l2(next_line)
            l3(next_line)
        if l3(address):
            return 2
        return 3

    # Warmup replay, cache (and coherence) side only: the oracle's
    # ``warmup`` touches the predictor too, but the two systems never
    # interact, so the split replay is exact.  The directory account runs
    # *before* the cache lookup, matching ``CacheHierarchy.data_access``.
    for i in range(warmup):
        uop = ops[i]
        if i % FETCH_BLOCK_UOPS == 0:
            fetch_code(uop.pc if uop.pc else i * 4)
        op = uop.op
        if op is LOAD or op is STORE:
            if account is not None:
                account(core_id, uop.address, op is STORE, noc_penalty)
            data_code(uop.address)
    fetch_levels: List[int] = []
    load_levels: List[int] = []
    load_remote: List[int] = []
    code_counts = [0, 0, 0, 0]
    for i in range(warmup, len(ops)):
        uop = ops[i]
        measured_index = i - warmup
        if measured_index % FETCH_BLOCK_UOPS == 0:
            fetch_levels.append(
                fetch_code(uop.pc if uop.pc else measured_index * 4)
            )
        op = uop.op
        if op is LOAD:
            extra = 0
            if account is not None:
                extra = account(core_id, uop.address, False, noc_penalty)
            code = data_code(uop.address)
            code_counts[code] += 1
            load_levels.append(code)
            load_remote.append(1 if extra else 0)
        elif op is STORE:
            if account is not None:
                account(core_id, uop.address, True, noc_penalty)
            data_code(uop.address)
    counts = {
        level: count
        for level, count in zip(_LEVELS, code_counts) if count
    }
    image = MemoryImage(fetch_levels, load_levels, load_remote, counts)
    if single:
        images[donor_config.shared_l2] = image
    return image


# -- per-config latency tables ------------------------------------------------


def _load_done_terms(config: CoreConfig, image: MemoryImage,
                     noc_penalty: int) -> np.ndarray:
    """Per-load ``access.latency + load_extra`` under one config."""
    table = np.array(
        [
            config.dl1_cycles,
            config.l2_cycles,
            config.l3_cycles + noc_penalty,
            config.l3_cycles + noc_penalty + config.dram_cycles,
        ],
        dtype=np.int64,
    )
    terms = table[image.load_levels]
    if image.any_remote:
        terms = terms + image.load_remote * max(2, noc_penalty)
    return terms + (config.load_to_use_cycles - 4)


def _fetch_penalties(config: CoreConfig, image: MemoryImage) -> np.ndarray:
    """Per-block ``access.latency - il1_cycles`` under one config."""
    il1 = config.il1_cycles
    table = np.array(
        [
            0,
            config.l2_cycles - il1,
            config.l3_cycles - il1,
            config.l3_cycles + config.dram_cycles - il1,
        ],
        dtype=np.int64,
    )
    return table[image.fetch_levels]


# -- scalar timing path -------------------------------------------------------


def _time_one(trace: Trace, arrays: TraceArrays, corrects: Sequence[bool],
              image: MemoryImage, config: CoreConfig,
              noc_penalty: int = 0) -> SimResult:
    """Tight decoded timing loop for one configuration.

    A transliteration of :meth:`OutOfOrderCore.run` with all decode,
    cache and predictor work replaced by the precomputed arrays; the
    width limiters are inlined, the issue/FU occupancy maps are the real
    ones (same first-fit walks, same pruning schedule) so the schedule —
    and the tracked-cycle telemetry — is identical to the oracle's.
    """
    cfg = config
    n = arrays.n
    codes = arrays.codes
    src1 = arrays.src1
    src2 = arrays.src2
    lat_l = arrays.lat
    busy_l = arrays.busy
    load_done = _load_done_terms(cfg, image, noc_penalty).tolist()
    fetch_pen = _fetch_penalties(cfg, image).tolist()

    completion = [0] * n
    issue_at = [0] * n
    commit_at = [0] * n

    # In-order width limiters, inlined (_WidthLimiter state pairs).
    f_width = cfg.dispatch_width * 2
    f_cycle = f_used = 0
    r_width = cfg.dispatch_width
    r_cycle = r_used = 0
    c_width = cfg.commit_width
    c_cycle = c_used = 0
    issue_slots = _PerCycleBandwidth(cfg.issue_width)
    issue_alloc = issue_slots.allocate
    pools = [_FuPool(count) for count in _POOL_SIZES]
    reserves = [pool.reserve for pool in pools]

    rob_entries = cfg.rob_entries
    iq_entries = cfg.iq_entries
    lq_entries = cfg.lq_entries
    sq_entries = cfg.sq_entries
    hetero = cfg.hetero
    refill = max(1, cfg.branch_mispredict_cycles - FRONT_END_DEPTH)
    lq_inflight: deque = deque(maxlen=lq_entries)
    sq_inflight: deque = deque(maxlen=sq_entries)

    redirect_free = 0
    fetch_block_ready = 0
    last_fp_div_issue = -FP_DIV_ISSUE_INTERVAL
    prune_interval = _ooo.PRUNE_INTERVAL
    prune_at = prune_interval
    rename = 0
    k_load = k_branch = k_block = 0
    stall_fetch_icache = stall_fetch_redirect = 0
    stall_rename_bw = stall_rob = stall_iq = stall_lq = stall_sq = 0
    stall_decode = stall_operand = stall_fu = stall_issue_bw = 0

    LOAD = _LOAD
    STORE = _STORE
    BRANCH = _BRANCH
    COMPLEX = _COMPLEX
    FP_DIV = _FP_DIV

    for i in range(n):
        code = codes[i]
        # ---- fetch ---------------------------------------------------------
        if i % FETCH_BLOCK_UOPS == 0:
            penalty = fetch_pen[k_block]
            k_block += 1
            base = fetch_block_ready
            if redirect_free > base:
                stall_fetch_redirect += redirect_free - base
                base = redirect_free
            if penalty > 0:
                stall_fetch_icache += penalty
                fetch_block_ready = base + penalty
            else:
                fetch_block_ready = base
        earliest = (fetch_block_ready
                    if fetch_block_ready >= redirect_free else redirect_free)
        if earliest > f_cycle:
            f_cycle = earliest
            f_used = 0
        if f_used >= f_width:
            f_cycle += 1
            f_used = 0
        f_used += 1

        # ---- rename/dispatch: ROB/IQ/LQ/SQ occupancy -----------------------
        earliest = f_cycle + FRONT_END_DEPTH
        if i >= rob_entries:
            gate = commit_at[i - rob_entries]
            if gate > earliest:
                stall_rob += gate - earliest
                earliest = gate
        if i >= iq_entries:
            gate = issue_at[i - iq_entries]
            if gate > earliest:
                stall_iq += gate - earliest
                earliest = gate
        if code == LOAD:
            if len(lq_inflight) == lq_entries:
                gate = commit_at[lq_inflight[0]]
                if gate > earliest:
                    stall_lq += gate - earliest
                    earliest = gate
            lq_inflight.append(i)
        elif code == STORE:
            if len(sq_inflight) == sq_entries:
                gate = commit_at[sq_inflight[0]]
                if gate > earliest:
                    stall_sq += gate - earliest
                    earliest = gate
            sq_inflight.append(i)
        elif code == COMPLEX:
            if hetero:
                earliest += 1
                stall_decode += 1
        if earliest > r_cycle:
            r_cycle = earliest
            r_used = 0
        if r_used >= r_width:
            r_cycle += 1
            r_used = 0
        r_used += 1
        rename = r_cycle
        if rename > earliest:
            stall_rename_bw += rename - earliest

        # ---- register readiness --------------------------------------------
        ready = rename + 1
        dist = src1[i]
        if dist:
            produced = completion[i - dist]
            if produced > ready:
                ready = produced
        dist = src2[i]
        if dist:
            produced = completion[i - dist]
            if produced > ready:
                ready = produced
        if ready > rename + 1:
            stall_operand += ready - (rename + 1)

        # ---- issue ---------------------------------------------------------
        if code == FP_DIV:
            refractory = last_fp_div_issue + FP_DIV_ISSUE_INTERVAL
            if refractory > ready:
                stall_fu += refractory - ready
                ready = refractory
        start = reserves[code](ready, busy_l[i])
        if start > ready:
            stall_fu += start - ready
        issue = issue_alloc(start)
        if issue > start:
            stall_issue_bw += issue - start
        issue_at[i] = issue
        if code == FP_DIV:
            last_fp_div_issue = issue

        # ---- execute -------------------------------------------------------
        done = issue + lat_l[i]
        if code == LOAD:
            done = issue + load_done[k_load]
            k_load += 1
        elif code == BRANCH:
            if not corrects[k_branch]:
                if done + refill > redirect_free:
                    redirect_free = done + refill
            k_branch += 1
        completion[i] = done

        # ---- commit --------------------------------------------------------
        prev_commit = commit_at[i - 1] if i else 0
        target = done + 1 if done + 1 > prev_commit else prev_commit
        if target > c_cycle:
            c_cycle = target
            c_used = 0
        if c_used >= c_width:
            c_cycle += 1
            c_used = 0
        c_used += 1
        commit_at[i] = c_cycle

        # ---- bookkeeping ---------------------------------------------------
        if i >= prune_at:
            prune_at = i + prune_interval
            issue_slots.prune(rename)
            for pool in pools:
                pool.prune(rename)

    tracked = issue_slots.tracked_cycles + sum(
        pool.tracked_cycles for pool in pools
    )
    return _build_result(
        trace, arrays, corrects, image, cfg, commit_at,
        stall_cycles={
            "fetch_icache": stall_fetch_icache,
            "fetch_redirect": stall_fetch_redirect,
            "rename_bw": stall_rename_bw,
            "rob": stall_rob,
            "iq": stall_iq,
            "lq": stall_lq,
            "sq": stall_sq,
            "decode": stall_decode,
            "operand": stall_operand,
            "fu": stall_fu,
            "issue_bw": stall_issue_bw,
        },
        sync_commit_cycles=[int(commit_at[p]) for p in arrays.sync_pos],
        tracked_limiter_cycles=tracked,
    )


def _build_result(trace, arrays, corrects, image, config, commit_at,
                  stall_cycles, sync_commit_cycles,
                  tracked_limiter_cycles) -> SimResult:
    stats = SimStats()
    stats.uops = arrays.n
    stats.cycles = int(commit_at[-1]) if arrays.n else 0
    stats.branches = arrays.branches
    stats.mispredictions = sum(1 for c in corrects if not c)
    stats.loads = arrays.loads
    stats.stores = arrays.stores
    stats.fp_ops = arrays.fp_ops
    stats.complex_decodes = arrays.complex_decodes
    stats.ifetch_blocks = arrays.ifetch_blocks
    stats.mem_level_counts = dict(image.mem_level_counts)
    stats.sync_commit_cycles = sync_commit_cycles
    stats.stall_cycles = stall_cycles
    stats.tracked_limiter_cycles = tracked_limiter_cycles
    return SimResult(
        config_name=config.name,
        trace_name=trace.name,
        cycles=stats.cycles,
        frequency=config.frequency,
        stats=stats,
    )


# -- batched (N,) timing path -------------------------------------------------


def _time_many(trace: Trace, arrays: TraceArrays, corrects: Sequence[bool],
               image: MemoryImage, configs: Sequence[CoreConfig],
               noc_penalty: int = 0) -> List[SimResult]:
    """Evaluate the timing recurrences for all configs simultaneously.

    Per-config widths/latencies become a ``(N,)`` axis; the per-uop
    fetch/rename/issue/commit history becomes ``(n, N)`` arrays; the
    in-order limiters use the closed-form recurrence; the ROB/IQ/LQ/SQ
    gates become gathers with per-config window sizes.  Only the
    out-of-order issue-bandwidth and FU occupancy maps (first-fit over
    sparse per-cycle dicts, no closed form) stay per-config scalar.
    """
    N = len(configs)
    n = arrays.n
    int_ = np.int64
    cols = np.arange(N)
    codes = arrays.codes
    src1 = arrays.src1
    src2 = arrays.src2
    lat_l = arrays.lat
    busy_l = arrays.busy

    disp = np.fromiter((c.dispatch_width for c in configs), int_, N)
    fetch_w = disp * 2
    commit_w = np.fromiter((c.commit_width for c in configs), int_, N)
    rob = np.fromiter((c.rob_entries for c in configs), int_, N)
    iq = np.fromiter((c.iq_entries for c in configs), int_, N)
    lq = np.fromiter((c.lq_entries for c in configs), int_, N)
    sq = np.fromiter((c.sq_entries for c in configs), int_, N)
    hetero = np.fromiter((1 if c.hetero else 0 for c in configs), int_, N)
    refill = np.maximum(
        1,
        np.fromiter((c.branch_mispredict_cycles for c in configs), int_, N)
        - FRONT_END_DEPTH,
    )
    # (n_loads, N) / (n_blocks, N) latency terms from the shared image.
    load_term = np.stack(
        [_load_done_terms(c, image, noc_penalty) for c in configs], axis=1
    ) if arrays.loads else np.zeros((0, N), int_)
    fetch_pen = np.stack(
        [_fetch_penalties(c, image) for c in configs], axis=1
    ) if arrays.ifetch_blocks else np.zeros((0, N), int_)

    fetch_c = np.zeros((n, N), int_)
    rename_c = np.zeros((n, N), int_)
    issue_np = np.zeros((n, N), int_)
    commit_np = np.zeros((n, N), int_)
    completion = np.zeros((n, N), int_)

    issue_objs = [_PerCycleBandwidth(c.issue_width) for c in configs]
    pool_rows = [[_FuPool(count) for count in _POOL_SIZES] for _ in configs]

    zeros = np.zeros(N, int_)
    redirect_free = zeros.copy()
    fetch_block_ready = zeros.copy()
    last_fp_div = np.full(N, -FP_DIV_ISSUE_INTERVAL, int_)
    rename = zeros.copy()
    stall_fetch_icache = zeros.copy()
    stall_fetch_redirect = zeros.copy()
    stall_rename_bw = zeros.copy()
    stall_rob = zeros.copy()
    stall_iq = zeros.copy()
    stall_lq = zeros.copy()
    stall_sq = zeros.copy()
    stall_decode = zeros.copy()
    stall_operand = zeros.copy()
    stall_fu = zeros.copy()
    stall_issue_bw = zeros.copy()

    min_fetch_w = int(fetch_w.min()) if N else 0
    min_disp = int(disp.min()) if N else 0
    min_commit = int(commit_w.min()) if N else 0
    min_rob = int(rob.min()) if N else 0
    min_iq = int(iq.min()) if N else 0
    min_lq = int(lq.min()) if N else 0
    min_sq = int(sq.min()) if N else 0

    prune_interval = _ooo.PRUNE_INTERVAL
    prune_at = prune_interval
    k_load = k_store = k_branch = k_block = 0

    LOAD = _LOAD
    STORE = _STORE
    BRANCH = _BRANCH
    COMPLEX = _COMPLEX
    FP_DIV = _FP_DIV
    load_pos_np = arrays.load_pos_np
    store_pos_np = arrays.store_pos_np

    for i in range(n):
        code = codes[i]
        # ---- fetch ---------------------------------------------------------
        if i % FETCH_BLOCK_UOPS == 0:
            penalty = fetch_pen[k_block]
            k_block += 1
            base = fetch_block_ready
            advance = np.where(redirect_free > base, redirect_free - base, 0)
            stall_fetch_redirect += advance
            pos_pen = np.where(penalty > 0, penalty, 0)
            stall_fetch_icache += pos_pen
            fetch_block_ready = base + advance + pos_pen
        earliest = np.maximum(fetch_block_ready, redirect_free)
        if i:
            fetched = np.maximum(earliest, fetch_c[i - 1])
        else:
            fetched = earliest
        if i >= min_fetch_w:
            back = i - fetch_w
            gathered = fetch_c[np.maximum(back, 0), cols] + 1
            fetched = np.maximum(fetched, np.where(back >= 0, gathered, 0))
        fetch_c[i] = fetched

        # ---- rename/dispatch gates -----------------------------------------
        earliest = fetched + FRONT_END_DEPTH
        if i >= min_rob:
            back = i - rob
            gate = commit_np[np.maximum(back, 0), cols]
            add = np.where((back >= 0) & (gate > earliest), gate - earliest, 0)
            stall_rob += add
            earliest = earliest + add
        if i >= min_iq:
            back = i - iq
            gate = issue_np[np.maximum(back, 0), cols]
            add = np.where((back >= 0) & (gate > earliest), gate - earliest, 0)
            stall_iq += add
            earliest = earliest + add
        if code == LOAD:
            if k_load >= min_lq:
                back = k_load - lq
                rows = load_pos_np[np.maximum(back, 0)]
                gate = commit_np[rows, cols]
                add = np.where((back >= 0) & (gate > earliest),
                               gate - earliest, 0)
                stall_lq += add
                earliest = earliest + add
        elif code == STORE:
            if k_store >= min_sq:
                back = k_store - sq
                rows = store_pos_np[np.maximum(back, 0)]
                gate = commit_np[rows, cols]
                add = np.where((back >= 0) & (gate > earliest),
                               gate - earliest, 0)
                stall_sq += add
                earliest = earliest + add
        elif code == COMPLEX:
            stall_decode += hetero
            earliest = earliest + hetero
        if i:
            renamed = np.maximum(earliest, rename_c[i - 1])
        else:
            renamed = earliest
        if i >= min_disp:
            back = i - disp
            gathered = rename_c[np.maximum(back, 0), cols] + 1
            renamed = np.maximum(renamed, np.where(back >= 0, gathered, 0))
        rename_c[i] = renamed
        stall_rename_bw += renamed - earliest
        rename = renamed

        # ---- register readiness --------------------------------------------
        base_ready = renamed + 1
        ready = base_ready
        dist = src1[i]
        if dist:
            ready = np.maximum(ready, completion[i - dist])
        dist = src2[i]
        if dist:
            ready = np.maximum(ready, completion[i - dist])
        stall_operand += ready - base_ready

        # ---- issue ---------------------------------------------------------
        if code == FP_DIV:
            refractory = last_fp_div + FP_DIV_ISSUE_INTERVAL
            add = np.where(refractory > ready, refractory - ready, 0)
            stall_fu += add
            ready = ready + add
        busy = busy_l[i]
        ready_list = ready.tolist()
        issue_list = [0] * N
        for j in range(N):
            ready_j = ready_list[j]
            start = pool_rows[j][code].reserve(ready_j, busy)
            if start > ready_j:
                stall_fu[j] += start - ready_j
            issued = issue_objs[j].allocate(start)
            if issued > start:
                stall_issue_bw[j] += issued - start
            issue_list[j] = issued
        issue_row = np.array(issue_list, int_)
        issue_np[i] = issue_row
        if code == FP_DIV:
            last_fp_div = issue_row

        # ---- execute -------------------------------------------------------
        done = issue_row + lat_l[i]
        if code == LOAD:
            done = issue_row + load_term[k_load]
            k_load += 1
        elif code == STORE:
            k_store += 1
        elif code == BRANCH:
            if not corrects[k_branch]:
                redirect_free = np.maximum(redirect_free, done + refill)
            k_branch += 1
        completion[i] = done

        # ---- commit --------------------------------------------------------
        if i:
            target = np.maximum(done + 1, commit_np[i - 1])
        else:
            target = done + 1
        if i >= min_commit:
            back = i - commit_w
            gathered = commit_np[np.maximum(back, 0), cols] + 1
            target = np.maximum(target, np.where(back >= 0, gathered, 0))
        commit_np[i] = target

        # ---- bookkeeping ---------------------------------------------------
        if i >= prune_at:
            prune_at = i + prune_interval
            rename_list = rename.tolist()
            for j in range(N):
                watermark = rename_list[j]
                issue_objs[j].prune(watermark)
                for pool in pool_rows[j]:
                    pool.prune(watermark)

    results: List[SimResult] = []
    sync_matrix = commit_np[arrays.sync_pos] if arrays.sync_pos else None
    for j, config in enumerate(configs):
        tracked = issue_objs[j].tracked_cycles + sum(
            pool.tracked_cycles for pool in pool_rows[j]
        )
        sync_cycles = (
            [int(v) for v in sync_matrix[:, j]] if sync_matrix is not None
            else []
        )
        results.append(_build_result(
            trace, arrays, corrects, image, config, commit_np[:, j],
            stall_cycles={
                "fetch_icache": int(stall_fetch_icache[j]),
                "fetch_redirect": int(stall_fetch_redirect[j]),
                "rename_bw": int(stall_rename_bw[j]),
                "rob": int(stall_rob[j]),
                "iq": int(stall_iq[j]),
                "lq": int(stall_lq[j]),
                "sq": int(stall_sq[j]),
                "decode": int(stall_decode[j]),
                "operand": int(stall_operand[j]),
                "fu": int(stall_fu[j]),
                "issue_bw": int(stall_issue_bw[j]),
            },
            sync_commit_cycles=sync_cycles,
            tracked_limiter_cycles=tracked,
        ))
    return results


# -- public entry points ------------------------------------------------------


def simulate_core(trace: Trace, config: CoreConfig, image: MemoryImage,
                  noc_penalty: int = 0) -> SimResult:
    """Time one (trace, config) pair against a prebuilt memory image
    (the multicore batch driver's per-core primitive)."""
    return _time_one(trace, decode(trace), branch_outcomes(trace), image,
                     config, noc_penalty)


def run_trace_batch(configs: Sequence[CoreConfig], trace: Trace,
                    min_vector_width: Optional[int] = None,
                    stats_out: Optional[dict] = None) -> List[SimResult]:
    """Simulate ``trace`` under every config in one batched evaluation.

    Cycle-exact against ``run_trace(config, trace)`` for each config:
    the trace is decoded once, the predictor replayed once, the caches
    replayed once per L2 geometry, and only the timing recurrences run
    per configuration — via the NumPy ``(N,)`` path for groups of at
    least ``min_vector_width`` configs (default
    ``$REPRO_KERNEL_VECTOR_MIN`` or :data:`DEFAULT_VECTOR_MIN`), else
    via the tight scalar loop.  Results come back in config order.
    """
    configs = list(configs)
    if not configs:
        return []
    threshold = (min_vector_width if min_vector_width is not None
                 else vector_min_width())
    arrays = decode(trace)
    corrects = branch_outcomes(trace)
    results: List[Optional[SimResult]] = [None] * len(configs)
    groups: Dict[bool, List[int]] = {}
    for index, config in enumerate(configs):
        groups.setdefault(config.shared_l2, []).append(index)
    vectorized_groups = scalar_groups = 0
    for indices in groups.values():
        image = replay_memory(trace, configs[indices[0]])
        if len(indices) >= threshold:
            vectorized_groups += 1
            batch = _time_many(trace, arrays, corrects, image,
                               [configs[k] for k in indices])
            for index, result in zip(indices, batch):
                results[index] = result
        else:
            scalar_groups += 1
            for index in indices:
                results[index] = _time_one(trace, arrays, corrects, image,
                                           configs[index])
    if stats_out is not None:
        stats_out["vectorized_groups"] = (
            stats_out.get("vectorized_groups", 0) + vectorized_groups
        )
        stats_out["scalar_groups"] = (
            stats_out.get("scalar_groups", 0) + scalar_groups
        )
    return results


__all__ = [
    "DEFAULT_VECTOR_MIN",
    "MemoryImage",
    "TraceArrays",
    "branch_outcomes",
    "decode",
    "kernel_enabled",
    "replay_memory",
    "run_trace_batch",
    "simulate_core",
    "vector_min_width",
]
