"""Micro-op trace format consumed by the simulator.

The simulator is trace-driven (the paper drives Multi2Sim with SPEC2006 /
SPLASH2 / PARSEC binaries; we drive our core model with statistically
faithful synthetic traces).  A trace is a sequence of :class:`MicroOp`
records carrying:

* the operation class (which functional unit and latency it needs),
* register dependencies, expressed as *producer distances* (how many µops
  back each source operand was produced — the standard trace-driven way to
  encode dataflow without register names),
* a memory address for loads/stores (fed to the real cache hierarchy),
* a PC and taken/not-taken outcome for branches (fed to the real
  tournament predictor).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Sequence


class OpClass(enum.Enum):
    """Functional-unit classes with Table 9 latencies."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    COMPLEX = "complex"  # multi-uop x86 instruction (complex decoder path)
    SYNC = "sync"  # barrier/lock marker in parallel traces


#: Execution latency in cycles per op class (Table 9's FUs & latencies).
OP_LATENCY = {
    OpClass.ALU: 1,
    OpClass.MUL: 2,
    OpClass.DIV: 4,
    OpClass.FP_ADD: 2,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 8,
    OpClass.LOAD: 1,  # plus the cache round trip
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.COMPLEX: 1,
    OpClass.SYNC: 1,
}

#: Functional-unit pools (Table 9): class -> number of units.
FU_POOLS = {
    OpClass.ALU: 4,
    OpClass.MUL: 2,
    OpClass.DIV: 2,
    OpClass.FP_ADD: 2,
    OpClass.FP_MUL: 2,
    OpClass.FP_DIV: 2,
    OpClass.LOAD: 2,  # 2 LSUs
    OpClass.STORE: 2,
    OpClass.BRANCH: 4,  # branches resolve on the ALUs
    OpClass.COMPLEX: 4,
    OpClass.SYNC: 4,
}

#: Issue-rate restriction: FP divide issues every 8 cycles (Table 9).
FP_DIV_ISSUE_INTERVAL = 8


@dataclasses.dataclass(frozen=True)
class MicroOp:
    """One micro-operation in a trace."""

    op: OpClass
    #: Producer distances for up to two source operands (1 = the previous
    #: µop produced it).  ``None`` means the operand is ready (register
    #: value older than the window).
    src1: Optional[int] = None
    src2: Optional[int] = None
    #: Memory address (loads/stores).
    address: Optional[int] = None
    #: Branch PC and resolved direction (branches).
    pc: int = 0
    taken: bool = False
    #: Barrier id for SYNC ops in parallel traces.
    barrier: int = -1

    def __post_init__(self) -> None:
        if self.op in (OpClass.LOAD, OpClass.STORE) and self.address is None:
            raise ValueError(f"{self.op} requires an address")
        for dist in (self.src1, self.src2):
            if dist is not None and dist < 1:
                raise ValueError("producer distance must be >= 1")


@dataclasses.dataclass
class Trace:
    """A finished instruction trace plus its identity.

    ``warmup_ops`` marks a fast-forward prefix: the simulator replays it
    through the caches and predictor untimed, then measures the rest —
    the standard steady-state methodology for sampled simulation.
    """

    name: str
    ops: List[MicroOp]
    warmup_ops: int = 0
    #: Checkpoint-style warm state: line addresses resident in the data /
    #: instruction hierarchy at the start of the measured region.
    resident_data: List[int] = dataclasses.field(default_factory=list)
    resident_code: List[int] = dataclasses.field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def op_mix(self) -> dict:
        """Fraction of each op class in the trace (for sanity checks)."""
        counts: dict = {}
        for op in self.ops:
            counts[op.op] = counts.get(op.op, 0) + 1
        total = max(1, len(self.ops))
        return {klass: count / total for klass, count in counts.items()}


def validate_trace(ops: Sequence[MicroOp]) -> None:
    """Raise if any µop references a producer outside the trace prefix."""
    for index, op in enumerate(ops):
        for dist in (op.src1, op.src2):
            if dist is not None and dist > index:
                raise ValueError(
                    f"uop {index} references producer {dist} before trace start"
                )
