"""Tournament branch predictor (Table 9).

4K-entry selector indexed by PC ^ global history, choosing between a
4K-entry local predictor (per-PC 2-bit counters behind a local history
table) and a 4K-entry gshare global predictor; a 4K-entry 4-way BTB and a
32-entry return-address stack complete the front end.

This is a *functional* model: it is consulted per branch and trained on the
outcome; its mispredictions inject the (config-dependent) redirect bubble
into the pipeline model.
"""

from __future__ import annotations

import dataclasses
from typing import List


class _Counters:
    """An array of 2-bit saturating counters."""

    def __init__(self, size: int, init: int = 1) -> None:
        if size & (size - 1):
            raise ValueError("counter table size must be a power of two")
        self._table: List[int] = [init] * size
        self._mask = size - 1

    def predict(self, index: int) -> bool:
        return self._table[index & self._mask] >= 2

    def train(self, index: int, taken: bool) -> None:
        i = index & self._mask
        if taken:
            self._table[i] = min(3, self._table[i] + 1)
        else:
            self._table[i] = max(0, self._table[i] - 1)


@dataclasses.dataclass
class PredictorStats:
    """Aggregate accuracy counters."""

    branches: int = 0
    mispredictions: int = 0
    btb_misses: int = 0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredictions / self.branches if self.branches else 1.0

    @property
    def mpki(self) -> float:
        """Mispredictions per 1000 branches-seen instructions are computed
        by the caller; this is per 1000 *branches*."""
        return 1000.0 * self.mispredictions / self.branches if self.branches else 0.0


class TournamentPredictor:
    """The Table 9 tournament predictor with BTB and RAS."""

    def __init__(
        self,
        table_entries: int = 4096,
        btb_entries: int = 4096,
        btb_ways: int = 4,
        ras_entries: int = 32,
        local_history_bits: int = 10,
    ) -> None:
        self._selector = _Counters(table_entries)
        self._local = _Counters(table_entries)
        self._global = _Counters(table_entries)
        self._local_history: List[int] = [0] * table_entries
        self._local_mask = table_entries - 1
        self._history_mask = (1 << local_history_bits) - 1
        self._ghr = 0
        self._btb_sets = btb_entries // btb_ways
        self._btb_ways = btb_ways
        self._btb: List[List[int]] = [[] for _ in range(self._btb_sets)]
        self._ras: List[int] = []
        self._ras_entries = ras_entries
        self.stats = PredictorStats()

    # -- BTB ----------------------------------------------------------------

    def _btb_lookup(self, pc: int) -> bool:
        """True on BTB hit; installs the entry (LRU) on miss."""
        line = self._btb[pc % self._btb_sets]
        if pc in line:
            line.remove(pc)
            line.insert(0, pc)
            return True
        line.insert(0, pc)
        if len(line) > self._btb_ways:
            line.pop()
        return False

    # -- prediction -----------------------------------------------------------

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Predict one branch, train all tables, return correctness."""
        self.stats.branches += 1

        index = (pc ^ self._ghr) & self._local_mask
        local_idx = (
            self._local_history[pc & self._local_mask] ^ pc
        ) & self._local_mask
        local_pred = self._local.predict(local_idx)
        global_pred = self._global.predict(index)
        use_global = self._selector.predict(index)
        prediction = global_pred if use_global else local_pred

        if taken and not self._btb_lookup(pc):
            self.stats.btb_misses += 1

        # Train the selector toward whichever predictor was right.
        if local_pred != global_pred:
            self._selector.train(index, global_pred == taken)
        self._local.train(local_idx, taken)
        self._global.train(index, taken)
        self._local_history[pc & self._local_mask] = (
            (self._local_history[pc & self._local_mask] << 1) | int(taken)
        ) & self._history_mask
        self._ghr = ((self._ghr << 1) | int(taken)) & self._local_mask

        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        return correct

    # -- RAS -----------------------------------------------------------------

    def push_return(self, pc: int) -> None:
        """Record a call for later return prediction."""
        self._ras.append(pc)
        if len(self._ras) > self._ras_entries:
            self._ras.pop(0)

    def pop_return(self, pc: int) -> bool:
        """Predict a return; True when the RAS top matches."""
        self.stats.branches += 1
        predicted = self._ras.pop() if self._ras else -1
        correct = predicted == pc
        if not correct:
            self.stats.mispredictions += 1
        return correct
