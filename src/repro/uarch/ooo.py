"""Out-of-order core timing model.

A trace-driven scoreboard scheduler in the style of classic trace
simulators: every micro-op's fetch, rename, issue, completion and commit
cycles are computed in program order under the structural constraints of
Table 9 —

* fetch bandwidth, front-end redirect after branch mispredictions
  (the config's ``branch_mispredict_cycles`` path),
* dispatch width gated by ROB / IQ / LQ / SQ occupancy,
* issue width, functional-unit pools and latencies (Table 9),
* the load-to-use path (4 cycles in 2D, 3 in the 3D designs),
* a real tournament predictor and a real cache hierarchy (the simulator
  consults them; nothing is a fixed probability).

The model is cycle-faithful for the interactions the paper's evaluation
depends on (frequency vs memory latency in core clocks, shorter
load-to-use and branch paths) while remaining fast enough to sweep 21
applications across six configurations in pure Python.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.configs import CoreConfig
from repro.uarch.bpred import TournamentPredictor
from repro.uarch.cache import CacheHierarchy, CoherenceDirectory
from repro.uarch.isa import (
    FP_DIV_ISSUE_INTERVAL,
    FU_POOLS,
    OP_LATENCY,
    MicroOp,
    OpClass,
    Trace,
)

#: Front-end depth from fetch to rename (cycles).
FRONT_END_DEPTH = 5

#: Micro-ops per instruction-fetch block (one IL1 access per block).
FETCH_BLOCK_UOPS = 8


@dataclasses.dataclass
class SimStats:
    """Activity counters collected during a run (consumed by the power
    model and the experiment reports)."""

    uops: int = 0
    cycles: int = 0
    branches: int = 0
    mispredictions: int = 0
    loads: int = 0
    stores: int = 0
    fp_ops: int = 0
    complex_decodes: int = 0
    mem_level_counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    ifetch_blocks: int = 0
    sync_stall_cycles: int = 0
    #: Commit cycle of every SYNC (barrier) marker, for barrier alignment
    #: in the multicore model.
    sync_commit_cycles: List[int] = dataclasses.field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.uops / self.cycles if self.cycles else 0.0


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one trace on one configuration."""

    config_name: str
    trace_name: str
    cycles: int
    frequency: float
    stats: SimStats

    @property
    def ipc(self) -> float:
        return self.stats.uops / self.cycles if self.cycles else 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    def speedup_over(self, other: "SimResult") -> float:
        """Wall-clock speedup of this run relative to another."""
        return other.seconds / self.seconds


class _WidthLimiter:
    """Allocates at most ``width`` slots per cycle, monotonically."""

    def __init__(self, width: int) -> None:
        self.width = width
        self._cycle = 0
        self._used = 0

    def allocate(self, earliest: int) -> int:
        """Return the first cycle >= earliest with a free slot."""
        if earliest > self._cycle:
            self._cycle = earliest
            self._used = 0
        if self._used >= self.width:
            self._cycle += 1
            self._used = 0
        self._used += 1
        return self._cycle


class _PerCycleBandwidth:
    """Out-of-order bandwidth limiter: at most ``width`` events per cycle,
    with no ordering constraint between allocations (unlike the in-order
    :class:`_WidthLimiter`, which models pipeline stages that handle ops
    in program order).  The issue stage must use this one — a monotonic
    limiter would silently serialise issue and destroy memory-level
    parallelism."""

    def __init__(self, width: int) -> None:
        self.width = width
        self._used: Dict[int, int] = {}

    def allocate(self, earliest: int) -> int:
        cycle = earliest
        used = self._used
        while used.get(cycle, 0) >= self.width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle


class _FuPool:
    """A pool of identical units with out-of-order, per-cycle occupancy.

    Pipelined units (busy = 1) accept one new op per unit per cycle;
    blocking units (the divides) occupy a unit for their full latency.
    """

    def __init__(self, count: int) -> None:
        self._count = count
        self._used: Dict[int, int] = {}

    def reserve(self, earliest: int, busy: int) -> int:
        """First cycle >= earliest where a unit can accept the op."""
        cycle = earliest
        used = self._used
        while True:
            if all(used.get(cycle + k, 0) < self._count for k in range(busy)):
                for k in range(busy):
                    used[cycle + k] = used.get(cycle + k, 0) + 1
                return cycle
            cycle += 1


class OutOfOrderCore:
    """One core: OOO engine + predictor + cache hierarchy."""

    def __init__(
        self,
        config: CoreConfig,
        core_id: int = 0,
        coherence: Optional[CoherenceDirectory] = None,
        noc_penalty: int = 0,
    ) -> None:
        self.config = config
        self.core_id = core_id
        self.predictor = TournamentPredictor()
        self.caches = CacheHierarchy(config, core_id, coherence)
        self.noc_penalty = noc_penalty

    def warmup(self, ops) -> None:
        """Prime the caches and the branch predictor with a fast-forward
        replay of the trace's warmup prefix.

        Short synthetic traces would otherwise be dominated by cold-start
        misses and untrained predictor tables; real evaluations (and the
        paper's Multi2Sim runs) measure steady-state regions after a
        fast-forward phase.  No clocks advance here.
        """
        for i, uop in enumerate(ops):
            if i % FETCH_BLOCK_UOPS == 0:
                self.caches.fetch(uop.pc if uop.pc else i * 4)
            if uop.op in (OpClass.LOAD, OpClass.STORE):
                self.caches.data_access(
                    uop.address,
                    is_store=uop.op is OpClass.STORE,
                    noc_penalty=self.noc_penalty,
                )
            elif uop.op is OpClass.BRANCH:
                self.predictor.predict_and_train(uop.pc, uop.taken)
        # Warmup trains the predictor but must not pollute the reported
        # accuracy statistics.
        self.predictor.stats.branches = 0
        self.predictor.stats.mispredictions = 0
        self.predictor.stats.btb_misses = 0

    def run(self, trace: Trace) -> SimResult:
        """Simulate a trace; fast-forwards its warmup prefix, then times
        the measured region.  Returns timing plus activity stats."""
        cfg = self.config
        if trace.resident_data or trace.resident_code:
            self.caches.preload(trace.resident_data, trace.resident_code)
        if trace.warmup_ops:
            self.warmup(trace.ops[: trace.warmup_ops])
        ops = trace.ops[trace.warmup_ops :]
        stats = SimStats()
        n = len(ops)
        completion: List[int] = [0] * n
        issue_at: List[int] = [0] * n
        commit_at: List[int] = [0] * n

        fetch_slots = _WidthLimiter(cfg.dispatch_width * 2)
        rename_slots = _WidthLimiter(cfg.dispatch_width)
        issue_slots = _PerCycleBandwidth(cfg.issue_width)
        commit_slots = _WidthLimiter(cfg.commit_width)
        pools = {klass: _FuPool(count) for klass, count in FU_POOLS.items()}

        redirect_free = 0  # front end stalled until this cycle (mispredicts)
        fetch_block_ready = 0  # current fetch block available at this cycle
        last_fp_div_issue = -FP_DIV_ISSUE_INTERVAL
        load_extra = cfg.load_to_use_cycles - 4  # 0 in 2D, -1 in 3D designs
        refill = max(1, cfg.branch_mispredict_cycles - FRONT_END_DEPTH)

        for i, uop in enumerate(ops):
            # ---- fetch -----------------------------------------------------
            if i % FETCH_BLOCK_UOPS == 0:
                stats.ifetch_blocks += 1
                access = self.caches.fetch(uop.pc if uop.pc else i * 4)
                penalty = max(0, access.latency - cfg.il1_cycles)
                fetch_block_ready = max(fetch_block_ready, redirect_free) + penalty
            fetch = fetch_slots.allocate(max(fetch_block_ready, redirect_free))

            # ---- rename/dispatch: ROB/IQ/LQ/SQ occupancy ---------------------
            earliest = fetch + FRONT_END_DEPTH
            if i >= cfg.rob_entries:
                earliest = max(earliest, commit_at[i - cfg.rob_entries])
            if i >= cfg.iq_entries:
                earliest = max(earliest, issue_at[i - cfg.iq_entries])
            if uop.op is OpClass.LOAD and stats.loads >= cfg.lq_entries:
                earliest = max(earliest, commit_at[i - cfg.lq_entries])
            if uop.op is OpClass.STORE and stats.stores >= cfg.sq_entries:
                earliest = max(earliest, commit_at[i - cfg.sq_entries])
            if uop.op is OpClass.COMPLEX:
                stats.complex_decodes += 1
                if cfg.hetero:
                    # Complex decoder lives in the top layer: +1 cycle
                    # (Section 4.1.2); rare, so the IPC cost is small.
                    earliest += 1
            rename = rename_slots.allocate(earliest)

            # ---- register readiness ----------------------------------------
            ready = rename + 1
            for dist in (uop.src1, uop.src2):
                if dist is not None and dist <= i:
                    ready = max(ready, completion[i - dist])

            # ---- issue -----------------------------------------------------
            if uop.op is OpClass.FP_DIV:
                ready = max(ready, last_fp_div_issue + FP_DIV_ISSUE_INTERVAL)
            latency = OP_LATENCY[uop.op]
            # Table 9: adds/multiplies are fully pipelined (issue every
            # cycle); only the divide units block for their full latency.
            busy = latency if uop.op in (OpClass.DIV, OpClass.FP_DIV) else 1
            start = pools[uop.op].reserve(ready, busy)
            issue = issue_slots.allocate(start)
            issue_at[i] = issue
            if uop.op is OpClass.FP_DIV:
                last_fp_div_issue = issue

            # ---- execute ---------------------------------------------------
            done = issue + latency
            if uop.op is OpClass.LOAD:
                stats.loads += 1
                access = self.caches.data_access(
                    uop.address, is_store=False, noc_penalty=self.noc_penalty
                )
                level = access.level
                stats.mem_level_counts[level] = (
                    stats.mem_level_counts.get(level, 0) + 1
                )
                done = issue + access.latency + load_extra
            elif uop.op is OpClass.STORE:
                stats.stores += 1
                self.caches.data_access(
                    uop.address, is_store=True, noc_penalty=self.noc_penalty
                )
            elif uop.op is OpClass.BRANCH:
                stats.branches += 1
                correct = self.predictor.predict_and_train(uop.pc, uop.taken)
                if not correct:
                    stats.mispredictions += 1
                    redirect_free = max(redirect_free, done + refill)
            if uop.op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV):
                stats.fp_ops += 1
            completion[i] = done

            # ---- commit ----------------------------------------------------
            prev_commit = commit_at[i - 1] if i else 0
            commit_at[i] = commit_slots.allocate(max(done + 1, prev_commit))
            if uop.op is OpClass.SYNC:
                stats.sync_commit_cycles.append(commit_at[i])

        stats.uops = n
        stats.cycles = commit_at[-1] if n else 0
        return SimResult(
            config_name=cfg.name,
            trace_name=trace.name,
            cycles=stats.cycles,
            frequency=cfg.frequency,
            stats=stats,
        )


def run_trace(config: CoreConfig, trace: Trace) -> SimResult:
    """Convenience wrapper: simulate ``trace`` on a fresh core (the trace's
    own warmup prefix is fast-forwarded automatically)."""
    return OutOfOrderCore(config).run(trace)
