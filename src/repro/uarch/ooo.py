"""Out-of-order core timing model.

A trace-driven scoreboard scheduler in the style of classic trace
simulators: every micro-op's fetch, rename, issue, completion and commit
cycles are computed in program order under the structural constraints of
Table 9 —

* fetch bandwidth, front-end redirect after branch mispredictions
  (the config's ``branch_mispredict_cycles`` path),
* dispatch width gated by ROB / IQ / LQ / SQ occupancy,
* issue width, functional-unit pools and latencies (Table 9),
* the load-to-use path (4 cycles in 2D, 3 in the 3D designs),
* a real tournament predictor and a real cache hierarchy (the simulator
  consults them; nothing is a fixed probability).

The model is cycle-faithful for the interactions the paper's evaluation
depends on (frequency vs memory latency in core clocks, shorter
load-to-use and branch paths) while remaining fast enough to sweep 21
applications across six configurations in pure Python.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, List, Optional

from repro.core.configs import CoreConfig
from repro.uarch.bpred import TournamentPredictor
from repro.uarch.cache import CacheHierarchy, CoherenceDirectory
from repro.uarch.isa import (
    FP_DIV_ISSUE_INTERVAL,
    FU_POOLS,
    OP_LATENCY,
    OpClass,
    Trace,
)

#: Front-end depth from fetch to rename (cycles).
FRONT_END_DEPTH = 5

#: Micro-ops per instruction-fetch block (one IL1 access per block).
FETCH_BLOCK_UOPS = 8

#: Micro-ops between prunes of the per-cycle occupancy maps; keeps the
#: issue/FU bookkeeping bounded on arbitrarily long traces.
PRUNE_INTERVAL = 4096

#: Total occupancy-map entries (issue + FU pools) at the end of the most
#: recent :meth:`OutOfOrderCore.run` in *this process*.  Deprecated: the
#: per-result :attr:`SimStats.tracked_limiter_cycles` replaces it — a
#: module global garbles silently across ``ProcessPoolExecutor`` workers
#: (each worker has its own copy; the parent's never updates).
_LAST_TRACKED_CYCLES = 0


def last_tracked_cycles() -> int:
    """Occupancy-map entries left after the most recent run.

    .. deprecated::
        Read ``result.stats.tracked_limiter_cycles`` instead; this
        process-global view is meaningless when runs execute in worker
        processes.
    """
    import warnings

    warnings.warn(
        "last_tracked_cycles() is deprecated; read "
        "result.stats.tracked_limiter_cycles instead (the module global "
        "is not updated by ProcessPoolExecutor workers)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _LAST_TRACKED_CYCLES


#: Stall-attribution categories reported in ``SimStats.stall_cycles``
#: (every run reports all of them, zero-valued when a cause never bit).
STALL_CAUSES = (
    "fetch_icache",    # instruction-cache miss penalty at fetch
    "fetch_redirect",  # front-end squash after branch mispredictions
    "rename_bw",       # dispatch/rename bandwidth
    "rob",             # ROB full (commit of the displaced op gates rename)
    "iq",              # issue queue full
    "lq",              # load queue full
    "sq",              # store queue full
    "decode",          # complex-decode penalty (hetero top-layer decoder)
    "operand",         # waiting on producer results (dependence chains)
    "fu",              # functional-unit structural conflicts
    "issue_bw",        # issue bandwidth
)


@dataclasses.dataclass
class SimStats:
    """Activity counters collected during a run (consumed by the power
    model and the experiment reports)."""

    uops: int = 0
    cycles: int = 0
    branches: int = 0
    mispredictions: int = 0
    loads: int = 0
    stores: int = 0
    fp_ops: int = 0
    complex_decodes: int = 0
    mem_level_counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    ifetch_blocks: int = 0
    sync_stall_cycles: int = 0
    #: Commit cycle of every SYNC (barrier) marker, for barrier alignment
    #: in the multicore model.
    sync_commit_cycles: List[int] = dataclasses.field(default_factory=list)
    #: Per-stage stall attribution: cycles each structural constraint
    #: (fetch/rename/ROB/IQ/LQ/SQ/FU/issue bandwidth) or dependence chain
    #: delayed uops beyond the unconstrained schedule.  Keys are the
    #: :data:`STALL_CAUSES` names.
    stall_cycles: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Occupancy-map entries (issue + FU pools) left at the end of the
    #: run — shows the watermark pruning keeps bookkeeping bounded.
    #: Carried per result so it survives process-pool workers (the old
    #: module-global :func:`last_tracked_cycles` did not).
    tracked_limiter_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.uops / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        """Fraction of branches predicted correctly (1.0 with no branches)."""
        if not self.branches:
            return 1.0
        return 1.0 - self.mispredictions / self.branches

    def cache_hit_rates(self) -> Dict[str, float]:
        """Fraction of data accesses served at each memory level."""
        total = sum(self.mem_level_counts.values())
        if not total:
            return {}
        return {
            level: count / total
            for level, count in sorted(self.mem_level_counts.items())
        }


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Outcome of simulating one trace on one configuration."""

    config_name: str
    trace_name: str
    cycles: int
    frequency: float
    stats: SimStats

    @property
    def ipc(self) -> float:
        return self.stats.uops / self.cycles if self.cycles else 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    def speedup_over(self, other: "SimResult") -> float:
        """Wall-clock speedup of this run relative to another."""
        return other.seconds / self.seconds


class _WidthLimiter:
    """Allocates at most ``width`` slots per cycle, monotonically."""

    def __init__(self, width: int) -> None:
        self.width = width
        self._cycle = 0
        self._used = 0

    def allocate(self, earliest: int) -> int:
        """Return the first cycle >= earliest with a free slot."""
        if earliest > self._cycle:
            self._cycle = earliest
            self._used = 0
        if self._used >= self.width:
            self._cycle += 1
            self._used = 0
        self._used += 1
        return self._cycle


class _PerCycleBandwidth:
    """Out-of-order bandwidth limiter: at most ``width`` events per cycle,
    with no ordering constraint between allocations (unlike the in-order
    :class:`_WidthLimiter`, which models pipeline stages that handle ops
    in program order).  The issue stage must use this one — a monotonic
    limiter would silently serialise issue and destroy memory-level
    parallelism."""

    def __init__(self, width: int) -> None:
        self.width = width
        self._used: Dict[int, int] = {}

    def allocate(self, earliest: int) -> int:
        cycle = earliest
        used = self._used
        while used.get(cycle, 0) >= self.width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    def prune(self, watermark: int) -> None:
        """Forget occupancy below ``watermark``.  Callers only ever probe
        cycles >= their ``earliest``, and every future ``earliest`` is at
        least the (monotonic) rename cycle — so entries below it are dead
        weight on long traces."""
        used = self._used
        for cycle in [c for c in used if c < watermark]:
            del used[cycle]

    @property
    def tracked_cycles(self) -> int:
        """Number of cycle entries currently held (bench introspection)."""
        return len(self._used)


class _FuPool:
    """A pool of identical units with out-of-order, per-cycle occupancy.

    Pipelined units (busy = 1) accept one new op per unit per cycle;
    blocking units (the divides) occupy a unit for their full latency.
    """

    def __init__(self, count: int) -> None:
        self._count = count
        self._used: Dict[int, int] = {}

    def reserve(self, earliest: int, busy: int) -> int:
        """First cycle >= earliest where a unit can accept the op."""
        cycle = earliest
        used = self._used
        count = self._count
        used_get = used.get
        if busy == 1:  # pipelined units: the common, cheap case
            while used_get(cycle, 0) >= count:
                cycle += 1
            used[cycle] = used_get(cycle, 0) + 1
            return cycle
        while True:
            if all(used_get(cycle + k, 0) < count for k in range(busy)):
                for k in range(busy):
                    used[cycle + k] = used_get(cycle + k, 0) + 1
                return cycle
            cycle += 1

    def prune(self, watermark: int) -> None:
        """Forget occupancy below ``watermark`` (see
        :meth:`_PerCycleBandwidth.prune`)."""
        used = self._used
        for cycle in [c for c in used if c < watermark]:
            del used[cycle]

    @property
    def tracked_cycles(self) -> int:
        """Number of cycle entries currently held (bench introspection)."""
        return len(self._used)


class OutOfOrderCore:
    """One core: OOO engine + predictor + cache hierarchy."""

    def __init__(
        self,
        config: CoreConfig,
        core_id: int = 0,
        coherence: Optional[CoherenceDirectory] = None,
        noc_penalty: int = 0,
    ) -> None:
        self.config = config
        self.core_id = core_id
        self.predictor = TournamentPredictor()
        self.caches = CacheHierarchy(config, core_id, coherence)
        self.noc_penalty = noc_penalty

    def warmup(self, ops) -> None:
        """Prime the caches and the branch predictor with a fast-forward
        replay of the trace's warmup prefix.

        Short synthetic traces would otherwise be dominated by cold-start
        misses and untrained predictor tables; real evaluations (and the
        paper's Multi2Sim runs) measure steady-state regions after a
        fast-forward phase.  No clocks advance here.
        """
        for i, uop in enumerate(ops):
            if i % FETCH_BLOCK_UOPS == 0:
                self.caches.fetch(uop.pc if uop.pc else i * 4)
            if uop.op in (OpClass.LOAD, OpClass.STORE):
                self.caches.data_access(
                    uop.address,
                    is_store=uop.op is OpClass.STORE,
                    noc_penalty=self.noc_penalty,
                )
            elif uop.op is OpClass.BRANCH:
                self.predictor.predict_and_train(uop.pc, uop.taken)
        # Warmup trains the predictor but must not pollute the reported
        # accuracy statistics.
        self.predictor.stats.branches = 0
        self.predictor.stats.mispredictions = 0
        self.predictor.stats.btb_misses = 0

    def run(self, trace: Trace) -> SimResult:
        """Simulate a trace; fast-forwards its warmup prefix, then times
        the measured region.  Returns timing plus activity stats."""
        cfg = self.config
        if trace.resident_data or trace.resident_code:
            self.caches.preload(trace.resident_data, trace.resident_code)
        if trace.warmup_ops:
            self.warmup(trace.ops[: trace.warmup_ops])
        ops = trace.ops[trace.warmup_ops :]
        stats = SimStats()
        n = len(ops)
        completion: List[int] = [0] * n
        issue_at: List[int] = [0] * n
        commit_at: List[int] = [0] * n

        fetch_slots = _WidthLimiter(cfg.dispatch_width * 2)
        rename_slots = _WidthLimiter(cfg.dispatch_width)
        issue_slots = _PerCycleBandwidth(cfg.issue_width)
        commit_slots = _WidthLimiter(cfg.commit_width)
        pools = {klass: _FuPool(count) for klass, count in FU_POOLS.items()}

        redirect_free = 0  # front end stalled until this cycle (mispredicts)
        fetch_block_ready = 0  # current fetch block available at this cycle
        last_fp_div_issue = -FP_DIV_ISSUE_INTERVAL
        load_extra = cfg.load_to_use_cycles - 4  # 0 in 2D, -1 in 3D designs
        refill = max(1, cfg.branch_mispredict_cycles - FRONT_END_DEPTH)

        # In-flight loads/stores by uop index: entry [0] is the op whose
        # commit frees the queue slot the incoming op needs.
        lq_inflight: deque = deque(maxlen=cfg.lq_entries)
        sq_inflight: deque = deque(maxlen=cfg.sq_entries)

        # Hot-loop locals: attribute/global lookups hoisted out of the
        # per-uop path (the full runner spends most of its time here).
        rob_entries = cfg.rob_entries
        iq_entries = cfg.iq_entries
        lq_entries = cfg.lq_entries
        sq_entries = cfg.sq_entries
        il1_cycles = cfg.il1_cycles
        hetero = cfg.hetero
        noc_penalty = self.noc_penalty
        cache_fetch = self.caches.fetch
        data_access = self.caches.data_access
        predict_and_train = self.predictor.predict_and_train
        fetch_alloc = fetch_slots.allocate
        rename_alloc = rename_slots.allocate
        issue_alloc = issue_slots.allocate
        commit_alloc = commit_slots.allocate
        op_latency = OP_LATENCY
        LOAD = OpClass.LOAD
        STORE = OpClass.STORE
        BRANCH = OpClass.BRANCH
        COMPLEX = OpClass.COMPLEX
        SYNC = OpClass.SYNC
        DIV = OpClass.DIV
        FP_DIV = OpClass.FP_DIV
        FP_ADD = OpClass.FP_ADD
        FP_MUL = OpClass.FP_MUL
        mem_level_counts = stats.mem_level_counts
        sync_commit_cycles = stats.sync_commit_cycles
        loads = stores = branches = mispredictions = 0
        fp_ops = complex_decodes = ifetch_blocks = 0
        prune_at = PRUNE_INTERVAL
        rename = 0
        # Per-stage stall attribution (cycles each constraint pushed a uop
        # past the schedule it would otherwise have had).
        stall_fetch_icache = stall_fetch_redirect = 0
        stall_rename_bw = stall_rob = stall_iq = stall_lq = stall_sq = 0
        stall_decode = stall_operand = stall_fu = stall_issue_bw = 0

        for i, uop in enumerate(ops):
            op = uop.op
            # ---- fetch -----------------------------------------------------
            if i % FETCH_BLOCK_UOPS == 0:
                ifetch_blocks += 1
                access = cache_fetch(uop.pc if uop.pc else i * 4)
                penalty = access.latency - il1_cycles
                base = fetch_block_ready
                if redirect_free > base:
                    stall_fetch_redirect += redirect_free - base
                    base = redirect_free
                if penalty > 0:
                    stall_fetch_icache += penalty
                    fetch_block_ready = base + penalty
                else:
                    fetch_block_ready = base
            fetch = fetch_alloc(
                fetch_block_ready
                if fetch_block_ready >= redirect_free
                else redirect_free
            )

            # ---- rename/dispatch: ROB/IQ/LQ/SQ occupancy ---------------------
            earliest = fetch + FRONT_END_DEPTH
            if i >= rob_entries:
                gate = commit_at[i - rob_entries]
                if gate > earliest:
                    stall_rob += gate - earliest
                    earliest = gate
            if i >= iq_entries:
                gate = issue_at[i - iq_entries]
                if gate > earliest:
                    stall_iq += gate - earliest
                    earliest = gate
            if op is LOAD:
                # Queue-full stall: gated on the commit of the N-th
                # previous *load* (the op whose LQ slot this one takes),
                # not of the uop N positions back in program order.
                if len(lq_inflight) == lq_entries:
                    gate = commit_at[lq_inflight[0]]
                    if gate > earliest:
                        stall_lq += gate - earliest
                        earliest = gate
                lq_inflight.append(i)
            elif op is STORE:
                if len(sq_inflight) == sq_entries:
                    gate = commit_at[sq_inflight[0]]
                    if gate > earliest:
                        stall_sq += gate - earliest
                        earliest = gate
                sq_inflight.append(i)
            elif op is COMPLEX:
                complex_decodes += 1
                if hetero:
                    # Complex decoder lives in the top layer: +1 cycle
                    # (Section 4.1.2); rare, so the IPC cost is small.
                    earliest += 1
                    stall_decode += 1
            rename = rename_alloc(earliest)
            if rename > earliest:
                stall_rename_bw += rename - earliest

            # ---- register readiness ----------------------------------------
            ready = rename + 1
            dist = uop.src1
            if dist is not None and dist <= i:
                produced = completion[i - dist]
                if produced > ready:
                    ready = produced
            dist = uop.src2
            if dist is not None and dist <= i:
                produced = completion[i - dist]
                if produced > ready:
                    ready = produced
            if ready > rename + 1:
                stall_operand += ready - (rename + 1)

            # ---- issue -----------------------------------------------------
            if op is FP_DIV:
                refractory = last_fp_div_issue + FP_DIV_ISSUE_INTERVAL
                if refractory > ready:
                    # Divider issue-interval backpressure is an FU limit.
                    stall_fu += refractory - ready
                    ready = refractory
            latency = op_latency[op]
            # Table 9: adds/multiplies are fully pipelined (issue every
            # cycle); only the divide units block for their full latency.
            busy = latency if (op is DIV or op is FP_DIV) else 1
            start = pools[op].reserve(ready, busy)
            if start > ready:
                stall_fu += start - ready
            issue = issue_alloc(start)
            if issue > start:
                stall_issue_bw += issue - start
            issue_at[i] = issue
            if op is FP_DIV:
                last_fp_div_issue = issue

            # ---- execute ---------------------------------------------------
            done = issue + latency
            if op is LOAD:
                loads += 1
                access = data_access(
                    uop.address, is_store=False, noc_penalty=noc_penalty
                )
                level = access.level
                mem_level_counts[level] = mem_level_counts.get(level, 0) + 1
                done = issue + access.latency + load_extra
            elif op is STORE:
                stores += 1
                data_access(
                    uop.address, is_store=True, noc_penalty=noc_penalty
                )
            elif op is BRANCH:
                branches += 1
                correct = predict_and_train(uop.pc, uop.taken)
                if not correct:
                    mispredictions += 1
                    if done + refill > redirect_free:
                        redirect_free = done + refill
            elif op is FP_ADD or op is FP_MUL:
                fp_ops += 1
            if op is FP_DIV:
                fp_ops += 1
            completion[i] = done

            # ---- commit ----------------------------------------------------
            prev_commit = commit_at[i - 1] if i else 0
            commit_at[i] = commit_alloc(
                done + 1 if done + 1 > prev_commit else prev_commit
            )
            if op is SYNC:
                sync_commit_cycles.append(commit_at[i])

            # ---- bookkeeping: bound the per-cycle occupancy maps -----------
            if i >= prune_at:
                prune_at = i + PRUNE_INTERVAL
                # Every future allocation probes cycles >= rename (rename
                # is monotonic and every later stage starts at ready >=
                # rename + 1), so earlier entries are unreachable.
                issue_slots.prune(rename)
                for pool in pools.values():
                    pool.prune(rename)

        global _LAST_TRACKED_CYCLES
        _LAST_TRACKED_CYCLES = issue_slots.tracked_cycles + sum(
            pool.tracked_cycles for pool in pools.values()
        )
        stats.tracked_limiter_cycles = _LAST_TRACKED_CYCLES
        stats.loads = loads
        stats.stores = stores
        stats.branches = branches
        stats.mispredictions = mispredictions
        stats.fp_ops = fp_ops
        stats.complex_decodes = complex_decodes
        stats.ifetch_blocks = ifetch_blocks
        stats.uops = n
        stats.cycles = commit_at[-1] if n else 0
        stats.stall_cycles = {
            "fetch_icache": stall_fetch_icache,
            "fetch_redirect": stall_fetch_redirect,
            "rename_bw": stall_rename_bw,
            "rob": stall_rob,
            "iq": stall_iq,
            "lq": stall_lq,
            "sq": stall_sq,
            "decode": stall_decode,
            "operand": stall_operand,
            "fu": stall_fu,
            "issue_bw": stall_issue_bw,
        }
        return SimResult(
            config_name=cfg.name,
            trace_name=trace.name,
            cycles=stats.cycles,
            frequency=cfg.frequency,
            stats=stats,
        )


def run_trace(config: CoreConfig, trace: Trace) -> SimResult:
    """Convenience wrapper: simulate ``trace`` on a fresh core (the trace's
    own warmup prefix is fast-forwarded automatically)."""
    return OutOfOrderCore(config).run(trace)
