"""Shared-memory replay images for ProcessPool workers.

A cold parallel sweep pays its biggest tax re-deriving per-trace state
in every worker: each ``ProcessPoolExecutor`` work unit regenerates the
trace, decodes it into :class:`~repro.uarch.kernel.TraceArrays`, replays
the branch predictor, and replays the cache hierarchy per L2 geometry —
all pure functions of the trace that the parent has usually already
computed.  This module moves those replay products into one
``multiprocessing.shared_memory`` block per trace group so workers
*attach* (zero-copy NumPy views over the block) instead of re-deriving
or re-pickling them per work unit.

Lifecycle contract (the guarded part):

* the engine publishes once per sweep group (:func:`publish_group`),
* work units carry only the picklable :class:`GroupHandle` (a block
  name plus array layout and scalar metadata — a few hundred bytes),
* workers attach (:func:`attach_group`), compute, and ``close()``,
* the publisher unlinks in a ``finally`` (:meth:`PublishedGroup.unlink`),
* every step degrades gracefully: if shared memory is unavailable,
  publishing fails, or a worker cannot attach, callers fall back to the
  existing copy path (re-derive in the worker) with identical results.

``$REPRO_KERNEL_SHM=0`` disables the whole path.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import guard exercised via shm_enabled()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - CPython always ships it
    _shared_memory = None

from repro.core.configs import CoreConfig
from repro.uarch import kernel

#: Byte alignment of each array inside the block (64 keeps every view
#: cache-line aligned, which NumPy likes).
_ALIGN = 64

#: Spellings of ``$REPRO_KERNEL_SHM`` that disable the path.
_OFF = ("0", "false", "off", "no")

#: Block names this process created (and therefore owns in the resource
#: tracker).  Attaching to one's own block must NOT unregister it, or
#: the later ``unlink()`` double-unregisters and the tracker complains.
_OWNED: set = set()


def shm_enabled() -> bool:
    """Shared-memory publication is available and not disabled."""
    if _shared_memory is None:
        return False
    return os.environ.get("REPRO_KERNEL_SHM", "").strip().lower() not in _OFF


# ---------------------------------------------------------------------------
# Generic block packing: a named bundle of NumPy arrays in one segment
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BlockHandle:
    """Picklable descriptor of one shared block: name + array layout."""

    name: str
    size: int
    #: ``(key, offset, shape, dtype-str)`` per packed array.
    layout: Tuple[Tuple[str, int, tuple, str], ...]


def _pack(arrays: Dict[str, np.ndarray]):
    """Copy ``arrays`` into one fresh shared block; returns
    ``(shm, BlockHandle)``.  Raises on any shared-memory failure —
    callers treat that as "use the copy path"."""
    layout: List[Tuple[str, int, tuple, str]] = []
    offset = 0
    prepared: Dict[str, np.ndarray] = {}
    for key, value in arrays.items():
        arr = np.ascontiguousarray(value)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        layout.append((key, offset, tuple(arr.shape), arr.dtype.str))
        prepared[key] = arr
        offset += arr.nbytes
    shm = _shared_memory.SharedMemory(create=True, size=max(1, offset))
    try:
        for key, start, shape, dtype in layout:
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                              offset=start)
            view[...] = prepared[key]
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    _OWNED.add(shm.name)
    return shm, BlockHandle(name=shm.name, size=max(1, offset),
                            layout=tuple(layout))


def _untrack(shm) -> None:
    """Detach ``shm`` from the resource tracker.

    CPython (through 3.12) registers attached segments with the
    resource tracker as if the worker owned them, so worker exit would
    unlink blocks the parent still needs and log spurious leak
    warnings.  Ownership here is strictly the publisher's.
    """
    if shm.name in _OWNED:
        return
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _attach(handle: BlockHandle):
    """Map an existing block; returns ``(shm, {key: array view})``.

    The views alias the segment — callers must keep ``shm`` alive while
    using them and ``close()`` it afterwards.
    """
    shm = _shared_memory.SharedMemory(name=handle.name)
    _untrack(shm)
    views: Dict[str, np.ndarray] = {}
    for key, start, shape, dtype in handle.layout:
        views[key] = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                                offset=start)
    return shm, views


# ---------------------------------------------------------------------------
# Trace-group publication: decode + predictor + per-geometry cache replay
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class GroupHandle:
    """Everything a worker needs to rebuild a trace's replay state.

    ``block`` names the shared arrays; the scalar fields carry the
    decode counters and per-geometry image metadata that are cheaper to
    pickle than to re-derive.
    """

    block: BlockHandle
    trace_name: str
    n: int
    loads: int
    stores: int
    branches: int
    fp_ops: int
    complex_decodes: int
    ifetch_blocks: int
    #: Per published L2 geometry: (shared_l2, any_remote, mem_level_counts).
    images: Tuple[Tuple[bool, bool, tuple], ...]


class PublishedGroup:
    """Publisher-side ownership of one group's shared block."""

    def __init__(self, shm, handle: GroupHandle) -> None:
        self._shm = shm
        self.handle = handle

    def unlink(self) -> None:
        """Release the block (idempotent).  Workers that already
        attached keep their mapping until they ``close()``."""
        shm, self._shm = self._shm, None
        if shm is not None:
            _OWNED.discard(shm.name)
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - double-unlink races
                pass

    def __enter__(self) -> "PublishedGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


def publish_group(trace, configs: Sequence[CoreConfig]) -> PublishedGroup:
    """Publish ``trace``'s decode, predictor outcomes and the replay
    images for every L2 geometry in ``configs`` into one shared block.

    Raises on any failure (no shared memory, permissions, size limits);
    the caller falls back to the copy path.
    """
    if _shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    arrays = kernel.decode(trace)
    corrects = kernel.branch_outcomes(trace)
    geometries: List[bool] = []
    for config in configs:
        if config.shared_l2 not in geometries:
            geometries.append(config.shared_l2)

    packed: Dict[str, np.ndarray] = {
        "codes": np.asarray(arrays.codes, dtype=np.int64),
        "src1": np.asarray(arrays.src1, dtype=np.int64),
        "src2": np.asarray(arrays.src2, dtype=np.int64),
        "lat": np.asarray(arrays.lat, dtype=np.int64),
        "busy": np.asarray(arrays.busy, dtype=np.int64),
        "load_pos": arrays.load_pos_np,
        "store_pos": arrays.store_pos_np,
        "sync_pos": np.asarray(arrays.sync_pos, dtype=np.int64),
        "corrects": np.asarray(corrects, dtype=np.uint8),
    }
    image_meta: List[Tuple[bool, bool, tuple]] = []
    for geometry in geometries:
        donor = next(c for c in configs if c.shared_l2 == geometry)
        image = kernel.replay_memory(trace, donor)
        tag = f"img{int(geometry)}"
        packed[f"{tag}_fetch"] = image.fetch_levels
        packed[f"{tag}_load"] = image.load_levels
        packed[f"{tag}_remote"] = image.load_remote
        image_meta.append((
            geometry,
            image.any_remote,
            tuple(sorted(image.mem_level_counts.items())),
        ))

    shm, block = _pack(packed)
    handle = GroupHandle(
        block=block,
        trace_name=trace.name,
        n=arrays.n,
        loads=arrays.loads,
        stores=arrays.stores,
        branches=arrays.branches,
        fp_ops=arrays.fp_ops,
        complex_decodes=arrays.complex_decodes,
        ifetch_blocks=arrays.ifetch_blocks,
        images=tuple(image_meta),
    )
    return PublishedGroup(shm, handle)


class _TraceProxy:
    """Stand-in for a :class:`~repro.workloads.generator.Trace` whose
    kernel memos are pre-populated from a shared block.

    It deliberately has no ``ops``: every kernel entry point consults
    the ``_kernel_state`` memo first, so a memo miss (which would mean
    the proxy is being used outside its contract) fails loudly instead
    of silently recomputing from nothing.
    """

    __slots__ = ("name", "_kernel_state")

    def __init__(self, name: str, state: dict) -> None:
        self.name = name
        self._kernel_state = state


class AttachedGroup:
    """Worker-side view of a published group.

    ``trace`` quacks like the original trace for every kernel entry
    point (``decode``, ``branch_outcomes``, ``replay_memory`` and hence
    ``run_trace_batch``); the backing arrays alias the shared block, so
    keep this object alive while computing and ``close()`` it after.
    """

    def __init__(self, shm, trace: _TraceProxy) -> None:
        self._shm = shm
        self.trace = trace

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "AttachedGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_group(handle: GroupHandle) -> AttachedGroup:
    """Map a published group and rebuild kernel-ready replay state."""
    shm, views = _attach(handle.block)
    try:
        arrays = object.__new__(kernel.TraceArrays)
        arrays.n = handle.n
        # The scalar timing loops index per uop; plain lists beat NumPy
        # scalar indexing there, and .tolist() is one C pass.
        arrays.codes = views["codes"].tolist()
        arrays.src1 = views["src1"].tolist()
        arrays.src2 = views["src2"].tolist()
        arrays.lat = views["lat"].tolist()
        arrays.busy = views["busy"].tolist()
        arrays.load_pos = views["load_pos"].tolist()
        arrays.store_pos = views["store_pos"].tolist()
        arrays.sync_pos = views["sync_pos"].tolist()
        arrays.load_pos_np = views["load_pos"]
        arrays.store_pos_np = views["store_pos"]
        arrays.loads = handle.loads
        arrays.stores = handle.stores
        arrays.branches = handle.branches
        arrays.fp_ops = handle.fp_ops
        arrays.complex_decodes = handle.complex_decodes
        arrays.ifetch_blocks = handle.ifetch_blocks

        images: Dict[bool, kernel.MemoryImage] = {}
        for geometry, any_remote, counts in handle.images:
            tag = f"img{int(geometry)}"
            image = object.__new__(kernel.MemoryImage)
            image.fetch_levels = views[f"{tag}_fetch"]
            image.load_levels = views[f"{tag}_load"]
            image.load_remote = views[f"{tag}_remote"]
            image.any_remote = any_remote
            image.mem_level_counts = dict(counts)
            images[geometry] = image

        state = {
            "arrays": arrays,
            "branches": views["corrects"].tolist(),
            "images": images,
        }
        return AttachedGroup(shm, _TraceProxy(handle.trace_name, state))
    except BaseException:
        shm.close()
        raise


def run_handle_batch(handle: GroupHandle, configs: Sequence[CoreConfig],
                     min_vector_width: Optional[int] = None,
                     stats_out: Optional[dict] = None):
    """Attach, evaluate ``configs`` through the batched kernel, detach.

    Convenience wrapper for pool workers: one call per work unit, the
    mapping never outlives the result list.
    """
    with attach_group(handle) as group:
        return kernel.run_trace_batch(configs, group.trace,
                                      min_vector_width=min_vector_width,
                                      stats_out=stats_out)


__all__ = [
    "AttachedGroup",
    "BlockHandle",
    "GroupHandle",
    "PublishedGroup",
    "attach_group",
    "publish_group",
    "run_handle_batch",
    "shm_enabled",
]
