"""Analytical (interval) performance model — a fast cross-check.

Interval analysis (Karkhanis & Smith) predicts IPC from first-order
statistics: the core sustains its dispatch width between *miss events*
(branch mispredictions, long-latency cache misses), each of which drains
and refills the window.  The model is orders of magnitude faster than the
cycle model and is used by tests to sanity-check the simulator's trends —
if the two disagree on the *direction* of a config change, something is
broken.
"""

from __future__ import annotations

import dataclasses

from repro.core.configs import CoreConfig


@dataclasses.dataclass(frozen=True)
class WorkloadStats:
    """First-order statistics of a workload (per instruction)."""

    mispredicts_per_kilo: float
    l2_misses_per_kilo: float  # hits in L3
    dram_misses_per_kilo: float
    base_ipc_limit: float = 4.0  # dataflow/width limit with no miss events

    def __post_init__(self) -> None:
        if self.base_ipc_limit <= 0:
            raise ValueError("base IPC limit must be positive")
        if min(self.mispredicts_per_kilo, self.l2_misses_per_kilo,
               self.dram_misses_per_kilo) < 0:
            raise ValueError("event rates must be non-negative")


def predict_cpi(config: CoreConfig, workload: WorkloadStats,
                memory_parallelism: float = 3.0) -> float:
    """Predicted cycles per instruction under interval analysis.

    ``CPI = 1/ipc_limit + sum_events(rate * penalty)``; long-latency
    misses overlap by ``memory_parallelism``.
    """
    base = 1.0 / min(workload.base_ipc_limit, config.dispatch_width)
    branch_penalty = config.branch_mispredict_cycles
    cpi = base
    cpi += workload.mispredicts_per_kilo / 1000.0 * branch_penalty
    cpi += workload.l2_misses_per_kilo / 1000.0 * (
        config.l3_cycles / memory_parallelism
    )
    cpi += workload.dram_misses_per_kilo / 1000.0 * (
        (config.l3_cycles + config.dram_cycles) / memory_parallelism
    )
    # Load-to-use: every instruction pays a share of the load feed delay.
    cpi += 0.06 * (config.load_to_use_cycles - 3)
    return cpi


def workload_stats_from_sim(result) -> WorkloadStats:
    """First-order workload statistics extracted from a cycle-model run.

    ``result`` is a :class:`~repro.uarch.ooo.SimResult` (or anything with
    compatible ``.stats``).  The rates are per *measured* uop;
    ``mem_level_counts`` buckets loads by the level that served them, so
    L3 hits are the cycle model's L2 misses and DRAM hits its L3 misses
    — exactly the two event classes the interval model charges for.
    """
    stats = getattr(result, "stats", result)
    uops = max(1, stats.uops)
    levels = getattr(stats, "mem_level_counts", {}) or {}
    return WorkloadStats(
        mispredicts_per_kilo=stats.mispredictions * 1000.0 / uops,
        l2_misses_per_kilo=levels.get("L3", 0) * 1000.0 / uops,
        dram_misses_per_kilo=levels.get("DRAM", 0) * 1000.0 / uops,
    )


def predict_runtime(config: CoreConfig, workload: WorkloadStats,
                    instructions: int) -> float:
    """Predicted wall-clock seconds for ``instructions``."""
    return instructions * predict_cpi(config, workload) / config.frequency


def predict_speedup(config: CoreConfig, base: CoreConfig,
                    workload: WorkloadStats) -> float:
    """Analytical speedup of ``config`` over ``base`` on a workload."""
    return predict_runtime(base, workload, 1000) / predict_runtime(
        config, workload, 1000
    )
