"""Multicore simulation: per-tile configs, shared L3, NoC, barrier alignment.

The paper's multicore experiments (Figures 9 and 10) run 15 SPLASH2/PARSEC
applications on four- and eight-core systems.  The model here:

* splits the application's total work across tiles in proportion to each
  tile's expected throughput (equal shares when the tiles are identical —
  so an 8-core M3D-Het-2X runs half the per-core work of a 4-core Base,
  the source of its near-2x speedup),
* runs each tile's trace through the full out-of-order model, with a
  shared coherence directory and a NoC penalty on L3/remote accesses,
* aligns tiles at the barriers their traces carry: the time of each
  barrier-to-barrier phase is the *maximum* across tiles (stragglers set
  the pace; the profile's ``imbalance`` creates them).  Heterogeneous
  tile frequencies are aligned on a common reference clock (the fastest
  tile's).

Heterogeneity is first-class: every entry point here is a thin wrapper
over the tile-list core (:func:`run_parallel_tiles` /
:func:`evaluate_tiles`), where each tile carries its own
:class:`CoreConfig`.  The legacy single-config API (:func:`run_parallel`,
:func:`run_parallel_batch`) expands ``config.num_cores`` identical tiles
and is bit-exact against the pre-refactor implementation.

Figure 4's shared router stops (pairs of folded cores sharing L2s and a
stop) enter through the NoC model: fewer stops, shorter links, lower
average latency.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.configs import CoreConfig
from repro.lru import LruMemo
from repro.uarch.cache import CoherenceDirectory
from repro.uarch.noc import Noc, RingNoc
from repro.uarch.ooo import OutOfOrderCore, SimResult
from repro.workloads.profiles import AppProfile

#: Cycles to run the barrier protocol itself (flag propagation on the ring).
BARRIER_OVERHEAD_CYCLES: int = 40


@dataclasses.dataclass(frozen=True)
class MulticoreResult:
    """Outcome of one parallel application on one multicore config."""

    config_name: str
    trace_name: str
    cycles: int
    frequency: float
    per_core: List[SimResult]
    barrier_wait_cycles: int
    coherence_transfers: int
    noc_latency: int
    #: The ``total_uops`` the caller asked for.  ``actual_uops`` is what
    #: the cores measured; the two differ only when ``total_uops`` is
    #: smaller than the core count (each core runs at least one uop).
    requested_uops: int = 0
    #: Tail barrier phases silently dropped by alignment when cores
    #: disagree on barrier count (alignment truncates to the shortest
    #: core's phase list; a nonzero value also raises a
    #: :class:`repro.obs.ModelDisagreementWarning`).
    dropped_phases: int = 0

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    @property
    def total_uops(self) -> int:
        return sum(result.stats.uops for result in self.per_core)

    @property
    def actual_uops(self) -> int:
        """Measured uops actually executed across all cores (alias of
        :attr:`total_uops`, named for requested-vs-actual reporting)."""
        return self.total_uops

    @property
    def stall_cycles(self) -> Dict[str, int]:
        """Per-stage stall attribution summed across the cores."""
        totals: Dict[str, int] = {}
        for result in self.per_core:
            for cause, cycles in result.stats.stall_cycles.items():
                totals[cause] = totals.get(cause, 0) + cycles
        return totals

    def speedup_over(self, other: "MulticoreResult") -> float:
        """Wall-clock speedup at equal total work."""
        scale = other.total_uops / max(1, self.total_uops)
        return other.seconds / (self.seconds * scale)


def _phase_durations(result: SimResult) -> List[int]:
    """Cycle length of each barrier-to-barrier phase of one core's run."""
    markers = result.stats.sync_commit_cycles
    phases: List[int] = []
    previous = 0
    for marker in markers:
        phases.append(marker - previous)
        previous = marker
    phases.append(result.cycles - previous)  # tail after the last barrier
    return phases


def _align_barriers(
    results: List[SimResult],
    frequencies: Optional[Sequence[float]] = None,
) -> Tuple[int, int, int]:
    """Barrier alignment across cores:
    ``(total_cycles, wait_cycles, dropped_phases)``.

    Phase k completes when the slowest core does; stragglers set the
    pace and the others accumulate wait cycles.  Alignment truncates to
    the shortest core's phase count; ``dropped_phases`` counts the tail
    phases that truncation discarded (the caller records it on the
    result and warns).

    With heterogeneous ``frequencies`` the phases are first rescaled to
    the fastest tile's clock (``round(cycles * f_ref / f)``), so the
    returned totals are reference-clock cycles.  Homogeneous inputs take
    the exact integer path — bit-identical to the pre-tile model.
    """
    phase_lists = [_phase_durations(result) for result in results]
    num_phases = min(len(phases) for phases in phase_lists)
    dropped = sum(len(phases) - num_phases for phases in phase_lists)
    if frequencies is not None and len(set(frequencies)) > 1:
        f_ref = max(frequencies)
        phase_lists = [
            [int(round(cycles * f_ref / freq)) for cycles in phases]
            for phases, freq in zip(phase_lists, frequencies)
        ]
    total_cycles = 0
    wait_cycles = 0
    for k in range(num_phases):
        durations = [phases[k] for phases in phase_lists]
        longest = max(durations)
        total_cycles += longest + BARRIER_OVERHEAD_CYCLES
        wait_cycles += sum(longest - d for d in durations)
    return total_cycles, wait_cycles, dropped


def _tile_weights(tiles: Sequence[CoreConfig]) -> List[float]:
    """Relative expected throughput of each tile: peak uop bandwidth
    (``frequency * issue_width``) — the capability proxy the weighted
    work split keys on."""
    return [tile.frequency * tile.issue_width for tile in tiles]


def _work_shares(
    total_uops: int,
    tiles: Union[int, Sequence[CoreConfig]],
) -> List[int]:
    """Per-tile measured-uop shares summing to ``total_uops``.

    Identical tiles (or a bare core count, the legacy spelling) get the
    exact legacy split: even base share, remainder spread over the first
    cores.  Heterogeneous tiles get shares proportional to
    :func:`_tile_weights` via largest-remainder apportionment (ties
    broken by tile index).  Every tile runs at least one uop, so
    requests smaller than the tile count round up.
    """
    if isinstance(tiles, int):
        weights: List[float] = []
        cores = tiles
    else:
        weights = _tile_weights(tiles)
        cores = len(tiles)
    if cores < 1:
        raise ValueError("need at least one tile")
    if not weights or len(set(weights)) == 1:
        base_share, remainder = divmod(total_uops, cores)
        return [
            max(1, base_share + (1 if core_id < remainder else 0))
            for core_id in range(cores)
        ]
    scale = sum(weights)
    quotas = [total_uops * weight / scale for weight in weights]
    shares = [int(quota) for quota in quotas]
    leftover = total_uops - sum(shares)
    order = sorted(
        range(cores),
        key=lambda i: (-(quotas[i] - shares[i]), i),
    )
    for i in order[:leftover]:
        shares[i] += 1
    return [max(1, share) for share in shares]


def _default_noc(tiles: Sequence[CoreConfig]) -> RingNoc:
    """The legacy interconnect for a bare tile list: a ring with shared
    stops when every tile folds its L2 pair (Figure 4)."""
    return RingNoc(
        len(tiles),
        shared_stops=all(tile.shared_l2 for tile in tiles),
    )


def _tiles_name(tiles: Sequence[CoreConfig]) -> str:
    names = {tile.name for tile in tiles}
    if len(names) == 1:
        return tiles[0].name
    return f"{len(tiles)}-tile-mix"


def _tile_result(
    tiles: Sequence[CoreConfig],
    profile: AppProfile,
    total_uops: int,
    per_core: List[SimResult],
    transfers: int,
    penalty: int,
    name: Optional[str],
) -> MulticoreResult:
    """Barrier-align per-tile runs and assemble the result record."""
    frequencies = [tile.frequency for tile in tiles]
    total_cycles, wait_cycles, dropped = _align_barriers(per_core, frequencies)
    if dropped:
        from repro.obs import warn_model_disagreement

        warn_model_disagreement(
            f"barrier alignment on {profile.name} dropped {dropped} tail "
            f"phase(s): tiles disagree on barrier count"
        )
    return MulticoreResult(
        config_name=name if name is not None else _tiles_name(tiles),
        trace_name=profile.name,
        cycles=total_cycles,
        frequency=max(frequencies),
        per_core=per_core,
        barrier_wait_cycles=wait_cycles,
        coherence_transfers=transfers,
        noc_latency=penalty,
        requested_uops=total_uops,
        dropped_phases=dropped,
    )


def run_parallel_tiles(
    tiles: Sequence[CoreConfig],
    profile: AppProfile,
    total_uops: int,
    seed: int = 1234,
    noc: Optional[Noc] = None,
    name: Optional[str] = None,
) -> MulticoreResult:
    """Run one parallel application across a heterogeneous tile list.

    Each tile is one core with its own :class:`CoreConfig`;
    ``total_uops`` is the application's total (measured) work, split
    across tiles by :func:`_work_shares`.  This is the oracle path (the
    full out-of-order model per tile); :func:`evaluate_tiles` is the
    cycle-exact batched-kernel equivalent.
    """
    # Imported here to keep repro.uarch importable without repro.workloads
    # (the two packages reference each other at the edges).
    from repro.workloads.generator import generate_trace

    if not profile.is_parallel:
        raise ValueError(f"{profile.name} is not a parallel profile")
    tiles = list(tiles)
    if not tiles:
        raise ValueError("need at least one tile")
    if noc is None:
        noc = _default_noc(tiles)
    penalty = noc.average_latency
    # Conserve total work: shares sum to exactly ``total_uops`` (the old
    # ``max(1000, total_uops // cores)`` floor both dropped remainders
    # and inflated tiny sweeps).  Every tile still runs at least one
    # uop, so requests smaller than the tile count round up —
    # ``requested_uops`` vs ``actual_uops`` records it.
    shares = _work_shares(total_uops, tiles)

    coherence = CoherenceDirectory()
    results: List[SimResult] = []
    for core_id, (tile, share) in enumerate(zip(tiles, shares)):
        trace = generate_trace(profile, share, seed=seed, thread=core_id)
        core = OutOfOrderCore(
            tile,
            core_id=core_id,
            coherence=coherence,
            noc_penalty=penalty,
        )
        results.append(core.run(trace))

    return _tile_result(
        tiles, profile, total_uops, results, coherence.transfers, penalty,
        name,
    )


def run_parallel(
    config: CoreConfig,
    profile: AppProfile,
    total_uops: int,
    seed: int = 1234,
) -> MulticoreResult:
    """Run one parallel application across the config's cores.

    Thin shim over :func:`run_parallel_tiles` with ``config.num_cores``
    identical tiles on the paper's ring — bit-exact against the
    pre-tile-refactor implementation.
    """
    cores = config.num_cores
    noc = RingNoc(cores, shared_stops=config.shared_l2)
    return run_parallel_tiles(
        [config] * cores, profile, total_uops, seed=seed, noc=noc,
        name=config.name,
    )


# -- batched evaluation through the SoA kernel --------------------------------

#: Per-process multicore trace memo: every configuration with the same
#: core count shares one generated trace set per (profile, share, seed,
#: thread) — ``run_parallel`` regenerating them per config is the single
#: biggest cost of a cold multicore sweep.
_MC_TRACE_MEMO = LruMemo(cap=64)

#: Per-process memo of coherence-sequenced memory images, keyed by the
#: (profile, work split, per-tile geometry) that determines them.
#: Values are ``(images, coherence_transfers)``.
_MC_IMAGE_MEMO = LruMemo(cap=32)


def _mc_trace(profile: AppProfile, share: int, seed: int, thread: int):
    from repro.engine.cache import make_key
    from repro.workloads.generator import generate_trace

    key = make_key("mc-trace", profile=profile, uops=share, seed=seed,
                   thread=thread)
    return _MC_TRACE_MEMO.get(
        key,
        lambda: generate_trace(profile, share, seed=seed, thread=thread),
    )


def _prepare_tile_replay(
    profile: AppProfile,
    seed: int,
    traces: List,
    shares: Sequence[int],
    geometry: Tuple[bool, ...],
    donors: Sequence[CoreConfig],
    penalty: int,
) -> tuple:
    """Memoized coherence-sequenced replay for one per-tile geometry:
    ``(images, coherence_transfers)``.

    ``geometry`` is the per-tile ``shared_l2`` tuple — the only
    :class:`CoreConfig` field the cache hierarchy's shape depends on —
    so every tile list with the same geometry, work split and NoC
    penalty shares one replay regardless of timing parameters.
    """
    from repro.engine.cache import make_key
    from repro.uarch import kernel

    def build_images():
        # Replay cores sequentially through one shared directory
        # — the same access interleaving as run_parallel_tiles'
        # core-by-core loop, so ownership transitions (and the
        # transfer count) are identical.
        coherence = CoherenceDirectory()
        images = [
            kernel.replay_memory(trace, donors[core_id], core_id=core_id,
                                 coherence=coherence,
                                 noc_penalty=penalty)
            for core_id, trace in enumerate(traces)
        ]
        return images, coherence.transfers

    image_key = make_key(
        "mc-images", profile=profile, seed=seed, shares=tuple(shares),
        shared_l2=geometry, noc=penalty,
    )
    return _MC_IMAGE_MEMO.get(image_key, build_images)


def prepare_geometry_replay(
    profile: AppProfile,
    total_uops: int,
    seed: int,
    traces: List,
    cores: int,
    shared_l2: bool,
    donor: CoreConfig,
) -> tuple:
    """Memoized replay state for one (core count, L2 geometry) slice:
    ``(images, coherence_transfers, noc_penalty)``.

    This is the configuration-independent half of a multicore batch —
    everything that depends only on the trace set and the geometry.
    Split out of :func:`run_parallel_batch` so alternative executors
    (shared-memory workers, future remote pools) can reuse the replay
    without re-deriving it per configuration.
    """
    noc = RingNoc(cores, shared_stops=shared_l2)
    penalty = noc.average_latency
    shares = _work_shares(total_uops, cores)
    images, transfers = _prepare_tile_replay(
        profile, seed, traces, shares, (shared_l2,) * cores,
        [donor] * cores, penalty,
    )
    return images, transfers, penalty


def evaluate_tile_configs(
    tiles: Sequence[CoreConfig],
    profile: AppProfile,
    total_uops: int,
    traces: List,
    images: List,
    transfers: int,
    penalty: int,
    name: Optional[str] = None,
) -> MulticoreResult:
    """The configuration-dependent half of a tile batch: per-tile timing
    recurrences over prepared replay state, then barrier alignment.
    Bit-exact against :func:`run_parallel_tiles` for the same trace set
    and geometry."""
    from repro.uarch import kernel

    per_core = [
        kernel.simulate_core(trace, tile, image, noc_penalty=penalty)
        for tile, trace, image in zip(tiles, traces, images)
    ]
    return _tile_result(
        tiles, profile, total_uops, per_core, transfers, penalty, name,
    )


def evaluate_parallel_config(
    config: CoreConfig,
    profile: AppProfile,
    total_uops: int,
    traces: List,
    images: List,
    transfers: int,
    penalty: int,
) -> MulticoreResult:
    """Legacy single-config spelling of :func:`evaluate_tile_configs`."""
    return evaluate_tile_configs(
        [config] * len(traces), profile, total_uops, traces, images,
        transfers, penalty, name=config.name,
    )


def evaluate_tiles(
    tiles: Sequence[CoreConfig],
    profile: AppProfile,
    total_uops: int,
    seed: int = 1234,
    noc: Optional[Noc] = None,
    name: Optional[str] = None,
) -> MulticoreResult:
    """Kernel-path equivalent of :func:`run_parallel_tiles`.

    Traces are memoized per (profile, share, seed, thread) and the
    coherence replay per per-tile geometry, so repeated tile lists over
    the same workload amortise everything but the timing recurrences.
    Cycle-exact against the oracle path.
    """
    if not profile.is_parallel:
        raise ValueError(f"{profile.name} is not a parallel profile")
    tiles = list(tiles)
    if not tiles:
        raise ValueError("need at least one tile")
    if noc is None:
        noc = _default_noc(tiles)
    penalty = noc.average_latency
    shares = _work_shares(total_uops, tiles)
    traces = [
        _mc_trace(profile, share, seed, core_id)
        for core_id, share in enumerate(shares)
    ]
    geometry = tuple(tile.shared_l2 for tile in tiles)
    images, transfers = _prepare_tile_replay(
        profile, seed, traces, shares, geometry, tiles, penalty,
    )
    return evaluate_tile_configs(
        tiles, profile, total_uops, traces, images, transfers, penalty,
        name=name,
    )


def run_parallel_batch(
    configs: List[CoreConfig],
    profile: AppProfile,
    total_uops: int,
    seed: int = 1234,
) -> List[MulticoreResult]:
    """Run one parallel application under many configs in one batch.

    Bit-exact against per-config :func:`run_parallel` calls, but configs
    with the same core count share generated traces, and configs with
    the same (core count, L2 geometry) additionally share the
    coherence-sequenced cache replay
    (:func:`prepare_geometry_replay`); only the per-core timing
    recurrences (:func:`evaluate_parallel_config`) run per config,
    through the :mod:`repro.uarch.kernel` scalar path.
    """
    if not profile.is_parallel:
        raise ValueError(f"{profile.name} is not a parallel profile")
    results: List[Optional[MulticoreResult]] = [None] * len(configs)
    by_cores: "OrderedDict[int, List[int]]" = OrderedDict()
    for index, config in enumerate(configs):
        by_cores.setdefault(config.num_cores, []).append(index)
    for cores, indices in by_cores.items():
        shares = _work_shares(total_uops, cores)
        traces = [
            _mc_trace(profile, share, seed, core_id)
            for core_id, share in enumerate(shares)
        ]
        by_geometry: "OrderedDict[bool, List[int]]" = OrderedDict()
        for index in indices:
            by_geometry.setdefault(configs[index].shared_l2, []).append(index)
        for shared_l2, geo_indices in by_geometry.items():
            images, transfers, penalty = prepare_geometry_replay(
                profile, total_uops, seed, traces, cores, shared_l2,
                donor=configs[geo_indices[0]],
            )
            for index in geo_indices:
                results[index] = evaluate_parallel_config(
                    configs[index], profile, total_uops, traces, images,
                    transfers, penalty,
                )
    return results
