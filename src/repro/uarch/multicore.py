"""Multicore simulation: N cores, shared L3, ring NoC, barrier alignment.

The paper's multicore experiments (Figures 9 and 10) run 15 SPLASH2/PARSEC
applications on four- and eight-core systems.  The model here:

* splits the application's total work evenly across cores (so an 8-core
  M3D-Het-2X runs half the per-core work of a 4-core Base — the source of
  its near-2x speedup),
* runs each core's trace through the full out-of-order model, with a
  shared coherence directory and a ring-NoC penalty on L3/remote accesses,
* aligns cores at the barriers their traces carry: the time of each
  barrier-to-barrier phase is the *maximum* across cores (stragglers set
  the pace; the profile's ``imbalance`` creates them).

Figure 4's shared router stops (pairs of folded cores sharing L2s and a
stop) enter through the NoC model: fewer stops, shorter links, lower
average latency.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.configs import CoreConfig
from repro.uarch.cache import CoherenceDirectory
from repro.uarch.noc import RingNoc
from repro.uarch.ooo import OutOfOrderCore, SimResult
from repro.workloads.profiles import AppProfile

#: Cycles to run the barrier protocol itself (flag propagation on the ring).
BARRIER_OVERHEAD_CYCLES: int = 40


@dataclasses.dataclass(frozen=True)
class MulticoreResult:
    """Outcome of one parallel application on one multicore config."""

    config_name: str
    trace_name: str
    cycles: int
    frequency: float
    per_core: List[SimResult]
    barrier_wait_cycles: int
    coherence_transfers: int
    noc_latency: int
    #: The ``total_uops`` the caller asked for.  ``actual_uops`` is what
    #: the cores measured; the two differ only when ``total_uops`` is
    #: smaller than the core count (each core runs at least one uop).
    requested_uops: int = 0

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency

    @property
    def total_uops(self) -> int:
        return sum(result.stats.uops for result in self.per_core)

    @property
    def actual_uops(self) -> int:
        """Measured uops actually executed across all cores (alias of
        :attr:`total_uops`, named for requested-vs-actual reporting)."""
        return self.total_uops

    @property
    def stall_cycles(self) -> Dict[str, int]:
        """Per-stage stall attribution summed across the cores."""
        totals: Dict[str, int] = {}
        for result in self.per_core:
            for cause, cycles in result.stats.stall_cycles.items():
                totals[cause] = totals.get(cause, 0) + cycles
        return totals

    def speedup_over(self, other: "MulticoreResult") -> float:
        """Wall-clock speedup at equal total work."""
        scale = other.total_uops / max(1, self.total_uops)
        return other.seconds / (self.seconds * scale)


def _phase_durations(result: SimResult) -> List[int]:
    """Cycle length of each barrier-to-barrier phase of one core's run."""
    markers = result.stats.sync_commit_cycles
    phases: List[int] = []
    previous = 0
    for marker in markers:
        phases.append(marker - previous)
        previous = marker
    phases.append(result.cycles - previous)  # tail after the last barrier
    return phases


def _align_barriers(results: List[SimResult]) -> tuple:
    """Barrier alignment across cores: ``(total_cycles, wait_cycles)``.

    Phase k completes when the slowest core does; stragglers set the
    pace and the others accumulate wait cycles.
    """
    phase_lists = [_phase_durations(result) for result in results]
    num_phases = min(len(phases) for phases in phase_lists)
    total_cycles = 0
    wait_cycles = 0
    for k in range(num_phases):
        durations = [phases[k] for phases in phase_lists]
        longest = max(durations)
        total_cycles += longest + BARRIER_OVERHEAD_CYCLES
        wait_cycles += sum(longest - d for d in durations)
    return total_cycles, wait_cycles


def _work_shares(total_uops: int, cores: int) -> List[int]:
    """Per-core measured-uop shares: even base share, remainder spread
    over the first cores, every core at least one uop."""
    base_share, remainder = divmod(total_uops, cores)
    return [
        max(1, base_share + (1 if core_id < remainder else 0))
        for core_id in range(cores)
    ]


def run_parallel(
    config: CoreConfig,
    profile: AppProfile,
    total_uops: int,
    seed: int = 1234,
) -> MulticoreResult:
    """Run one parallel application across the config's cores.

    ``total_uops`` is the application's total (measured) work; each core
    executes ``total_uops / num_cores`` of it.
    """
    # Imported here to keep repro.uarch importable without repro.workloads
    # (the two packages reference each other at the edges).
    from repro.workloads.generator import generate_trace

    if not profile.is_parallel:
        raise ValueError(f"{profile.name} is not a parallel profile")
    cores = config.num_cores
    # Conserve total work: an even base share with the remainder spread
    # over the first cores, so the measured uops sum to exactly
    # ``total_uops`` (the old ``max(1000, total_uops // cores)`` floor
    # both dropped remainders and inflated tiny sweeps).  Every core
    # still runs at least one uop, so requests smaller than the core
    # count round up — ``requested_uops`` vs ``actual_uops`` records it.
    shares = _work_shares(total_uops, cores)

    noc = RingNoc(cores, shared_stops=config.shared_l2)
    coherence = CoherenceDirectory()
    results: List[SimResult] = []
    for core_id, share in enumerate(shares):
        trace = generate_trace(profile, share, seed=seed, thread=core_id)
        core = OutOfOrderCore(
            config,
            core_id=core_id,
            coherence=coherence,
            noc_penalty=noc.average_latency,
        )
        results.append(core.run(trace))

    # Barrier alignment: phase k completes when the slowest core does.
    total_cycles, wait_cycles = _align_barriers(results)

    return MulticoreResult(
        config_name=config.name,
        trace_name=profile.name,
        cycles=total_cycles,
        frequency=config.frequency,
        per_core=results,
        barrier_wait_cycles=wait_cycles,
        coherence_transfers=coherence.transfers,
        noc_latency=noc.average_latency,
        requested_uops=total_uops,
    )


# -- batched evaluation through the SoA kernel --------------------------------

#: Per-process multicore trace memo: every configuration with the same
#: core count shares one generated trace set per (profile, share, seed,
#: thread) — ``run_parallel`` regenerating them per config is the single
#: biggest cost of a cold multicore sweep.
_MC_TRACE_MEMO: "OrderedDict[str, object]" = OrderedDict()
_MC_TRACE_MEMO_CAP = 64

#: Per-process memo of coherence-sequenced memory images, keyed by the
#: (profile, work split, geometry) that determines them.  Values are
#: ``(images, coherence_transfers)``.
_MC_IMAGE_MEMO: "OrderedDict[str, tuple]" = OrderedDict()
_MC_IMAGE_MEMO_CAP = 32


def _memo_get(memo: "OrderedDict", cap: int, key: str, build):
    value = memo.get(key)
    if value is None:
        value = build()
        memo[key] = value
        if len(memo) > cap:
            memo.popitem(last=False)
    else:
        memo.move_to_end(key)
    return value


def _mc_trace(profile: AppProfile, share: int, seed: int, thread: int):
    from repro.engine.cache import make_key
    from repro.workloads.generator import generate_trace

    key = make_key("mc-trace", profile=profile, uops=share, seed=seed,
                   thread=thread)
    return _memo_get(
        _MC_TRACE_MEMO, _MC_TRACE_MEMO_CAP, key,
        lambda: generate_trace(profile, share, seed=seed, thread=thread),
    )


def prepare_geometry_replay(
    profile: AppProfile,
    total_uops: int,
    seed: int,
    traces: List,
    cores: int,
    shared_l2: bool,
    donor: CoreConfig,
) -> tuple:
    """Memoized replay state for one (core count, L2 geometry) slice:
    ``(images, coherence_transfers, noc_penalty)``.

    This is the configuration-independent half of a multicore batch —
    everything that depends only on the trace set and the geometry.
    Split out of :func:`run_parallel_batch` so alternative executors
    (shared-memory workers, future remote pools) can reuse the replay
    without re-deriving it per configuration.
    """
    from repro.engine.cache import make_key
    from repro.uarch import kernel

    noc = RingNoc(cores, shared_stops=shared_l2)
    penalty = noc.average_latency

    def build_images():
        # Replay cores sequentially through one shared directory
        # — the same access interleaving as run_parallel's
        # core-by-core loop, so ownership transitions (and the
        # transfer count) are identical.
        coherence = CoherenceDirectory()
        images = [
            kernel.replay_memory(trace, donor, core_id=core_id,
                                 coherence=coherence,
                                 noc_penalty=penalty)
            for core_id, trace in enumerate(traces)
        ]
        return images, coherence.transfers

    image_key = make_key(
        "mc-images", profile=profile, uops=total_uops, seed=seed,
        cores=cores, shared_l2=shared_l2, noc=penalty,
    )
    images, transfers = _memo_get(
        _MC_IMAGE_MEMO, _MC_IMAGE_MEMO_CAP, image_key, build_images
    )
    return images, transfers, penalty


def evaluate_parallel_config(
    config: CoreConfig,
    profile: AppProfile,
    total_uops: int,
    traces: List,
    images: List,
    transfers: int,
    penalty: int,
) -> MulticoreResult:
    """The configuration-dependent half of a multicore batch: per-core
    timing recurrences over prepared replay state, then barrier
    alignment.  Bit-exact against :func:`run_parallel` for the same
    trace set and geometry."""
    from repro.uarch import kernel

    per_core = [
        kernel.simulate_core(trace, config, image, noc_penalty=penalty)
        for trace, image in zip(traces, images)
    ]
    total_cycles, wait_cycles = _align_barriers(per_core)
    return MulticoreResult(
        config_name=config.name,
        trace_name=profile.name,
        cycles=total_cycles,
        frequency=config.frequency,
        per_core=per_core,
        barrier_wait_cycles=wait_cycles,
        coherence_transfers=transfers,
        noc_latency=penalty,
        requested_uops=total_uops,
    )


def run_parallel_batch(
    configs: List[CoreConfig],
    profile: AppProfile,
    total_uops: int,
    seed: int = 1234,
) -> List[MulticoreResult]:
    """Run one parallel application under many configs in one batch.

    Bit-exact against per-config :func:`run_parallel` calls, but configs
    with the same core count share generated traces, and configs with
    the same (core count, L2 geometry) additionally share the
    coherence-sequenced cache replay
    (:func:`prepare_geometry_replay`); only the per-core timing
    recurrences (:func:`evaluate_parallel_config`) run per config,
    through the :mod:`repro.uarch.kernel` scalar path.
    """
    if not profile.is_parallel:
        raise ValueError(f"{profile.name} is not a parallel profile")
    results: List[Optional[MulticoreResult]] = [None] * len(configs)
    by_cores: "OrderedDict[int, List[int]]" = OrderedDict()
    for index, config in enumerate(configs):
        by_cores.setdefault(config.num_cores, []).append(index)
    for cores, indices in by_cores.items():
        shares = _work_shares(total_uops, cores)
        traces = [
            _mc_trace(profile, share, seed, core_id)
            for core_id, share in enumerate(shares)
        ]
        by_geometry: "OrderedDict[bool, List[int]]" = OrderedDict()
        for index in indices:
            by_geometry.setdefault(configs[index].shared_l2, []).append(index)
        for shared_l2, geo_indices in by_geometry.items():
            images, transfers, penalty = prepare_geometry_replay(
                profile, total_uops, seed, traces, cores, shared_l2,
                donor=configs[geo_indices[0]],
            )
            for index in geo_indices:
                results[index] = evaluate_parallel_config(
                    configs[index], profile, total_uops, traces, images,
                    transfers, penalty,
                )
    return results
