"""Microarchitecture simulation: OOO core, predictor, caches, ring NoC and
the multicore barrier-aligned model (the repo's Multi2Sim replacement)."""

from repro.uarch.bpred import PredictorStats, TournamentPredictor
from repro.uarch.cache import (
    AccessResult,
    CacheHierarchy,
    CoherenceDirectory,
    SetAssociativeCache,
)
from repro.uarch.interval import (
    WorkloadStats,
    predict_cpi,
    predict_speedup,
    workload_stats_from_sim,
)
from repro.uarch.isa import FU_POOLS, OP_LATENCY, MicroOp, OpClass, Trace
from repro.uarch.kernel import kernel_enabled, run_trace_batch
from repro.uarch.multicore import (
    MulticoreResult,
    evaluate_tiles,
    run_parallel,
    run_parallel_batch,
    run_parallel_tiles,
)
from repro.uarch.noc import MeshNoc, Noc, RingNoc
from repro.uarch.ooo import OutOfOrderCore, SimResult, SimStats, run_trace

__all__ = [
    "PredictorStats",
    "TournamentPredictor",
    "AccessResult",
    "CacheHierarchy",
    "CoherenceDirectory",
    "SetAssociativeCache",
    "WorkloadStats",
    "predict_cpi",
    "predict_speedup",
    "workload_stats_from_sim",
    "kernel_enabled",
    "run_trace_batch",
    "run_parallel_batch",
    "FU_POOLS",
    "OP_LATENCY",
    "MicroOp",
    "OpClass",
    "Trace",
    "MulticoreResult",
    "run_parallel",
    "run_parallel_tiles",
    "evaluate_tiles",
    "MeshNoc",
    "Noc",
    "RingNoc",
    "OutOfOrderCore",
    "SimResult",
    "SimStats",
    "run_trace",
]
