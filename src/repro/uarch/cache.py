"""Set-associative cache hierarchy (Table 9).

Private IL1 (32KB/4-way/32B) and DL1 (32KB/8-way/32B), private L2
(256KB/8-way/64B), and a shared L3 (2MB per core, 16-way, 64B).  LRU
replacement throughout.  The hierarchy returns *round-trip latencies in
core cycles* straight from the :class:`~repro.core.configs.CoreConfig`,
so a higher-clocked M3D core automatically pays more cycles for DRAM —
the effect the paper notes in Section 7.1.1.

For multicores, an optional coherence layer tracks which core last wrote a
line; a read of a remote-dirty line costs an extra NoC round trip
(MESI-style cache-to-cache transfer).
"""

from __future__ import annotations

import hashlib
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.configs import CoreConfig


#: Lines fetched ahead by the L2 stream prefetcher on each L2 miss.
PREFETCH_DEGREE = 4


class SetAssociativeCache:
    """One LRU set-associative cache level.

    Each set is a plain list of resident tags, LRU-first / MRU-last.  At
    Table 9's way counts (4-16) the C-level list scan beats every O(1)
    hashed-container scheme we measured, and the simulator makes tens of
    millions of accesses per sweep, so the constant factor is the cost.
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int,
                 name: str = "cache") -> None:
        if size_bytes % (ways * line_bytes):
            raise ValueError(f"{name}: size not divisible by ways*line")
        self.name = name
        self.line_bytes = line_bytes
        self.sets = size_bytes // (ways * line_bytes)
        self.ways = ways
        self._lines: List[List[int]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access an address; True on hit.  Installs the line on miss."""
        self.accesses += 1
        tag = address // self.line_bytes
        line = self._lines[tag % self.sets]
        if tag in line:
            line.remove(tag)
            line.append(tag)
            return True
        self.misses += 1
        line.append(tag)
        if len(line) > self.ways:
            line.pop(0)
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class AccessResult:
    """Outcome of one memory access through the hierarchy."""

    __slots__ = ("latency", "level")

    def __init__(self, latency: int, level: str) -> None:
        self.latency = latency
        self.level = level  # "L1", "L2", "L3", "DRAM", "remote"

    def __repr__(self) -> str:
        return f"AccessResult(latency={self.latency}, level={self.level!r})"


#: Memo of post-preload cache states, keyed by the resident-line content
#: and the (only varying) L2 geometry.  Re-warming the hierarchy for every
#: configuration sweeping the same trace costs more than the simulation
#: itself; restoring a snapshot is ~60x cheaper than replaying the lines.
_PRELOAD_SNAPSHOTS: "OrderedDict[tuple, Tuple[List[List[int]], ...]]" = (
    OrderedDict()
)
_PRELOAD_SNAPSHOT_CAP = 256


def _lines_digest(lines: List[int]) -> bytes:
    """Content digest of a resident-line list (order matters for LRU)."""
    return hashlib.blake2b(array("q", lines).tobytes(), digest_size=16).digest()


def _newest_first_tags(streams, line_bytes: int) -> List[int]:
    """Distinct tags of ``streams`` in *reverse* last-access order.

    In an access-only sequence each set ends up holding its tags in
    last-access order, truncated to ``ways`` — evictions cannot change
    that (an evicted tag re-accessed later reinstalls at its new
    last-access position).  The order depends only on the streams and the
    line size, so levels sharing both (L2 and L3) share this pass.
    """
    recency: Dict[int, None] = {}
    for lines in streams:
        for address in lines:
            tag = address // line_bytes
            if tag in recency:
                del recency[tag]
            recency[tag] = None
    return list(reversed(recency))


def _distribute_tags(newest_first: List[int], sets: int,
                     ways: int) -> List[List[int]]:
    """Fill per-set LRU lists from a newest-first tag order."""
    lines: List[List[int]] = [[] for _ in range(sets)]
    for tag in newest_first:
        line = lines[tag % sets]
        if len(line) < ways:
            line.append(tag)
    return [line[::-1] for line in lines]


def _warmed_lines(streams, line_bytes: int, sets: int,
                  ways: int) -> List[List[int]]:
    """LRU state after accessing ``streams`` in order, computed directly
    (O(accesses) instead of replaying every access through the LRU)."""
    return _distribute_tags(
        _newest_first_tags(streams, line_bytes), sets, ways
    )


class CacheHierarchy:
    """Private L1s + private L2 + shared L3 for one core."""

    def __init__(self, config: CoreConfig, core_id: int = 0,
                 coherence: Optional["CoherenceDirectory"] = None) -> None:
        self.config = config
        self.core_id = core_id
        self.il1 = SetAssociativeCache(32 * 1024, 4, 32, "IL1")
        self.dl1 = SetAssociativeCache(32 * 1024, 8, 32, "DL1")
        # Figure 4: folded core pairs share their two L2s, doubling the
        # capacity visible to each core.
        l2_bytes = 512 * 1024 if config.shared_l2 else 256 * 1024
        self.l2 = SetAssociativeCache(l2_bytes, 8, 64, "L2")
        self.l3 = SetAssociativeCache(2 * 1024 * 1024, 16, 64, "L3")
        self.coherence = coherence
        self._never_preloaded = True

    def preload(self, data_lines, code_lines) -> None:
        """Install checkpoint-warm state (LRU keeps what fits).

        Insertion order is the residency order: for working sets larger
        than a level, only the most recently inserted capacity-worth stays,
        exactly as steady-state LRU would leave it.  Data goes in first and
        code last — the instruction stream is re-touched constantly, so at
        steady state it is the most recently used resident.
        """
        levels = (self.il1, self.dl1, self.l2, self.l3)
        # Warming is a pure function of the resident lines and the cache
        # geometry; snapshot the resulting LRU state and restore it for
        # every later hierarchy warming the same trace.  Only safe when
        # this hierarchy is still untouched.
        pristine = self._never_preloaded and not any(
            cache.accesses for cache in levels
        )
        self._never_preloaded = False
        key = None
        if pristine:
            key = (
                self.l2.sets,
                _lines_digest(data_lines),
                _lines_digest(code_lines),
            )
            snapshot = _PRELOAD_SNAPSHOTS.get(key)
            if snapshot is not None:
                _PRELOAD_SNAPSHOTS.move_to_end(key)
                for cache, lines in zip(levels, snapshot):
                    cache._lines = [list(line) for line in lines]
                    cache.accesses = 0
                    cache.misses = 0
                return
        if pristine:
            # Untouched hierarchy: build each level's warm LRU state
            # directly from the streams' last-access order (exact — see
            # :func:`_newest_first_tags`) instead of replaying every
            # access.  L2 and L3 see the same streams at the same line
            # size, so they share one recency pass.
            shared = _newest_first_tags(
                (data_lines, code_lines), self.l2.line_bytes
            )
            l3_tags = (shared if self.l3.line_bytes == self.l2.line_bytes
                       else _newest_first_tags((data_lines, code_lines),
                                               self.l3.line_bytes))
            for cache, newest_first in (
                (self.il1, _newest_first_tags((code_lines,),
                                              self.il1.line_bytes)),
                (self.dl1, _newest_first_tags((data_lines,),
                                              self.dl1.line_bytes)),
                (self.l2, shared),
                (self.l3, l3_tags),
            ):
                cache._lines = _distribute_tags(
                    newest_first, cache.sets, cache.ways
                )
        else:
            # Already-warm hierarchy: layer the residents on top of the
            # existing state through the ordinary access path.
            for address in data_lines:
                self.dl1.access(address)
                self.l2.access(address)
                self.l3.access(address)
            for address in code_lines:
                self.il1.access(address)
                self.l2.access(address)
                self.l3.access(address)
        for cache in levels:
            cache.accesses = 0
            cache.misses = 0
        if key is not None:
            _PRELOAD_SNAPSHOTS[key] = tuple(
                [list(line) for line in cache._lines] for cache in levels
            )
            if len(_PRELOAD_SNAPSHOTS) > _PRELOAD_SNAPSHOT_CAP:
                _PRELOAD_SNAPSHOTS.popitem(last=False)

    def fetch(self, address: int) -> AccessResult:
        """Instruction fetch access."""
        if self.il1.access(address):
            return AccessResult(self.config.il1_cycles, "L1")
        if self.l2.access(address):
            return AccessResult(self.config.l2_cycles, "L2")
        if self.l3.access(address):
            return AccessResult(self.config.l3_cycles, "L3")
        return AccessResult(self.config.l3_cycles + self.config.dram_cycles, "DRAM")

    def data_access(self, address: int, is_store: bool = False,
                    noc_penalty: int = 0) -> AccessResult:
        """Data access; ``noc_penalty`` is the extra ring latency to the
        shared L3 / remote caches in a multicore."""
        coherence_extra = 0
        if self.coherence is not None:
            coherence_extra = self.coherence.account(
                self.core_id, address, is_store, noc_penalty
            )
        if self.dl1.access(address):
            return AccessResult(self.config.dl1_cycles + coherence_extra, "L1")
        if self.l2.access(address):
            return AccessResult(self.config.l2_cycles + coherence_extra, "L2")
        # L2 miss: the stream prefetcher pulls the next lines into L2, so a
        # sequential walk pays the long-latency miss only once per run of
        # lines rather than once per line (standard hardware behaviour;
        # pointer chasing gets no benefit).
        for ahead in range(1, PREFETCH_DEGREE + 1):
            next_line = address + ahead * self.l2.line_bytes
            self.l2.access(next_line)
            self.l3.access(next_line)
        if self.l3.access(address):
            return AccessResult(
                self.config.l3_cycles + noc_penalty + coherence_extra, "L3"
            )
        return AccessResult(
            self.config.l3_cycles + noc_penalty + self.config.dram_cycles
            + coherence_extra,
            "DRAM",
        )


class CoherenceDirectory:
    """MESI-flavoured sharing tracker for the multicore (Table 9's
    "Ring with MESI directory-based protocol").

    Tracks the last writer of each line.  A core touching a line that is
    dirty in another core's cache pays a cache-to-cache transfer: one NoC
    round trip.  Writes claim ownership and (logically) invalidate sharers.
    """

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._owner: Dict[int, int] = {}
        self.transfers = 0
        self.invalidations = 0

    def account(self, core_id: int, address: int, is_store: bool,
                noc_penalty: int) -> int:
        line = address // self.line_bytes
        owner = self._owner.get(line)
        extra = 0
        if owner is not None and owner != core_id:
            # Remote-dirty: cache-to-cache transfer across the ring.
            self.transfers += 1
            extra = max(2, noc_penalty)
            if is_store:
                self.invalidations += 1
        if is_store:
            self._owner[line] = core_id
        return extra
