"""Quickstart: partition a core for M3D and measure the gains end to end.

Walks the library's full pipeline in five steps:

1. partition the register file for an M3D stack (the paper's Table 5/6),
2. plan the whole core and derive the design frequencies (Table 11),
3. simulate one SPEC application on the 2D baseline and on M3D-Het,
4. convert the runs into energy (Figure 7's per-app view),
5. check the thermal consequences (Figure 8's per-app view).

Run with::

    python examples/quickstart.py
"""

from repro.core.configs import base_config, m3d_het_config
from repro.core.frequency import derive_m3d_het, derive_m3d_iso
from repro.core.structures import register_file
from repro.partition.strategies import (
    evaluate_2d,
    port_partition,
    reduction_report,
)
from repro.power.core_power import power_model_for
from repro.tech.process import stack_m3d_iso
from repro.thermal.hotspot import peak_temperature_2d, peak_temperature_m3d
from repro.uarch.ooo import run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.spec import spec_by_name


def main() -> None:
    # 1. Partition one structure: the 160x64b, 18-ported register file.
    geometry = register_file()
    baseline = evaluate_2d(geometry)
    partitioned = port_partition(geometry, stack_m3d_iso())
    report = reduction_report(baseline, partitioned)
    print("Step 1 - port-partitioned register file (vs 2D):")
    print(f"  access latency  -{report.latency_pct:.0f}%  (paper: -41%)")
    print(f"  access energy   -{report.energy_pct:.0f}%  (paper: -38%)")
    print(f"  footprint       -{report.footprint_pct:.0f}%  (paper: -56%)")

    # 2. Whole-core frequency derivation.
    iso = derive_m3d_iso()
    het = derive_m3d_het()
    print("\nStep 2 - derived core frequencies:")
    print(f"  M3D-Iso {iso.ghz:.2f} GHz (limited by {iso.limiting_structure}; "
          f"paper: 3.83 GHz)")
    print(f"  M3D-Het {het.ghz:.2f} GHz (limited by {het.limiting_structure}; "
          f"paper: 3.79 GHz)")

    # 3. Simulate an application on both designs.
    profile = spec_by_name()["Povray"]
    trace = generate_trace(profile, 8000)
    base_cfg, het_cfg = base_config(), m3d_het_config()
    base_run = run_trace(base_cfg, trace)
    het_run = run_trace(het_cfg, trace)
    speedup = het_run.speedup_over(base_run)
    print(f"\nStep 3 - {profile.name} on the cycle model:")
    print(f"  Base    IPC {base_run.ipc:.2f} @ {base_cfg.ghz:.2f} GHz")
    print(f"  M3D-Het IPC {het_run.ipc:.2f} @ {het_cfg.ghz:.2f} GHz")
    print(f"  speedup {speedup:.2f}x (paper single-core average: 1.25x)")

    # 4. Energy.
    base_energy = power_model_for(base_cfg).evaluate(base_run)
    het_energy = power_model_for(het_cfg).evaluate(het_run)
    print("\nStep 4 - energy for the same work:")
    print(f"  Base    {base_energy.total * 1e6:.1f} uJ "
          f"({base_energy.average_power:.1f} W)")
    print(f"  M3D-Het {het_energy.total * 1e6:.1f} uJ "
          f"({het_energy.average_power:.1f} W)")
    print(f"  normalized energy {het_energy.normalized_to(base_energy):.2f} "
          f"(paper average: 0.61)")

    # 5. Thermals.
    base_t = peak_temperature_2d(base_energy.average_power, profile)
    het_t = peak_temperature_m3d(het_energy.average_power, profile)
    print("\nStep 5 - peak temperature:")
    print(f"  Base    {base_t.peak_c:.1f} C")
    print(f"  M3D-Het {het_t.peak_c:.1f} C "
          f"(+{het_t.peak_c - base_t.peak_c:.1f} C; paper: ~+5 C)")


if __name__ == "__main__":
    main()
