"""Hetero-layer design-space study: how bad can the top layer get?

The paper assumes a 17% top-layer slowdown (Shi et al.) and shows its
asymmetric partitioning recovers nearly all of the iso-layer gains.  This
example sweeps the penalty from 0% (a future iso-performance process) to
35% (a pessimistic low-temperature process) and reports, at each point:

* the derived core frequency with naive vs asymmetric partitioning,
* the projected speedup of a compute-bound application,

quantifying how much of the M3D opportunity the paper's techniques
preserve as manufacturing gets harder.

Run with::

    python examples/hetero_design_space.py
"""

import dataclasses

from repro.core.configs import base_config, m3d_iso_config
from repro.core.frequency import derive_from_plans
from repro.core.structures import core_structures
from repro.partition.planner import plan_core
from repro.tech.process import stack_m3d_hetero
from repro.uarch.ooo import run_trace
from repro.workloads.generator import generate_trace
from repro.workloads.spec import spec_by_name

PENALTIES = (0.0, 0.10, 0.17, 0.25, 0.35)


def hetero_config_at(frequency: float, name: str):
    """An M3D config pinned to a swept frequency."""
    cfg = m3d_iso_config()
    return dataclasses.replace(
        cfg, name=name, frequency=frequency, hetero=True
    )


def main() -> None:
    trace = generate_trace(spec_by_name()["Gamess"], 8000)
    base_run = run_trace(base_config(), trace)

    print("Hetero-layer design space (Gamess, compute-bound):")
    print(f"{'penalty':>8} {'naive GHz':>10} {'asym GHz':>9} "
          f"{'recovered':>10} {'speedup':>8}")

    iso_plans = plan_core(core_structures(), stack_m3d_hetero(0.0))
    f_iso = derive_from_plans("iso", iso_plans).frequency

    for penalty in PENALTIES:
        stack = stack_m3d_hetero(penalty)
        # Naive: symmetric partitioning on the slow layer; approximate the
        # frequency loss with the layer's drive loss itself.
        f_naive = f_iso * (1.0 - penalty * 0.55)
        # Our techniques: asymmetric partitioning per Section 4.
        asym_plans = plan_core(core_structures(), stack, asymmetric=True)
        f_asym = derive_from_plans("asym", asym_plans).frequency

        recovered = (
            (f_asym - f_naive) / (f_iso - f_naive) if f_iso > f_naive else 1.0
        )
        run = run_trace(
            hetero_config_at(f_asym, f"het{penalty:.2f}"), trace
        )
        print(
            f"{penalty:7.0%} {f_naive / 1e9:10.2f} {f_asym / 1e9:9.2f} "
            f"{recovered:9.0%} {run.speedup_over(base_run):7.2f}x"
        )

    print(
        "\nReading: 'recovered' is the fraction of the naive design's "
        "frequency loss that the Section 4 asymmetric partitioning wins "
        "back; the paper's point is that it stays high even for slow top "
        "layers."
    )


if __name__ == "__main__":
    main()
