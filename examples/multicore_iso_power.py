"""Iso-power multicore study: spend the M3D savings on more cores.

Reproduces the Section 6.1/7.2.2 derivation and result: the M3D-Het core
at the base 3.3 GHz has slack to drop to 0.75 V; at that operating point
its power falls so far that *eight* cores fit in the power budget of four
2D cores — and run parallel applications nearly twice as fast with less
total energy (Figures 9/10's M3D-Het-2X bars).

Run with::

    python examples/multicore_iso_power.py
"""

from repro.core.configs import base_config, m3d_het_2x_config, m3d_het_config
from repro.power.core_power import power_model_for
from repro.power.dvfs import (
    iso_power_core_count,
    min_voltage_at_base_frequency,
)
from repro.uarch.multicore import run_parallel
from repro.workloads.parallel import parallel_profiles

APPS = ("Fft", "Ocean", "Lu", "Water-Spatial", "Blackscholes")
TOTAL_UOPS = 24000


def main() -> None:
    vdd = min_voltage_at_base_frequency()
    cores = iso_power_core_count()
    print("Iso-power derivation (Section 6.1):")
    print(f"  minimum Vdd at 3.3 GHz: {vdd:.2f} V (paper: 0.75 V)")
    print(f"  cores within the 4-core 2D budget: {cores} (paper: 8)")

    configs = [
        base_config(num_cores=4),
        m3d_het_config(num_cores=4),
        m3d_het_2x_config(),
    ]
    models = {cfg.name: power_model_for(cfg) for cfg in configs}
    profiles = {p.name: p for p in parallel_profiles()}

    print(f"\n{'app':<15} {'design':<12} {'speedup':>8} {'energy':>8} "
          f"{'power':>8}")
    for app in APPS:
        profile = profiles[app]
        base = run_parallel(configs[0], profile, TOTAL_UOPS)
        base_energy = models["Base"].evaluate_multicore(base)
        for cfg in configs:
            result = run_parallel(cfg, profile, TOTAL_UOPS)
            report = models[cfg.name].evaluate_multicore(result)
            scale = base.total_uops / max(1, result.total_uops)
            print(
                f"{app:<15} {cfg.name:<12} "
                f"{result.speedup_over(base):7.2f}x "
                f"{report.total * scale / base_energy.total:7.2f} "
                f"{report.average_power:7.1f}W"
            )
        print()

    print("Reading: M3D-Het-2X runs ~2x faster than the 4-core 2D baseline "
          "(paper: 1.92x average) in a similar power envelope, with lower "
          "total energy (paper: -39%).")


if __name__ == "__main__":
    main()
