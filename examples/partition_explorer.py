"""Partition explorer: evaluate BP/WP/PP for *your own* SRAM structure.

The paper's methodology is not specific to its Table 9 core — any storage
structure can be partitioned.  This example takes a custom structure (a
hypothetical 256-entry, 10-ported physical register file for a wider core,
plus a large 8K-entry predictor table), evaluates every strategy on every
stack, and prints a Table-6-style report, including the hetero-layer
asymmetric variants.

Run with::

    python examples/partition_explorer.py
"""

from repro.partition.planner import evaluate_strategies, plan_structure
from repro.partition.strategies import evaluate_2d, reduction_report
from repro.sram.array import ArrayGeometry
from repro.tech.process import stack_m3d_hetero, stack_m3d_iso, stack_tsv3d


CUSTOM_STRUCTURES = [
    ArrayGeometry("bigRF", words=256, bits=64, read_ports=8, write_ports=2),
    ArrayGeometry("bigBPT", words=8192, bits=8),
    ArrayGeometry("ROB", words=192, bits=96, read_ports=4, write_ports=4),
    ArrayGeometry("wideIQ", words=128, bits=24, read_ports=6, write_ports=3,
                  cam=True),
]


def explore(geometry: ArrayGeometry) -> None:
    baseline = evaluate_2d(geometry)
    access_ps = baseline.metrics.access_time * 1e12
    print(f"\n{geometry.name}: [{geometry.words}x{geometry.bits}b, "
          f"{geometry.ports} ports{', CAM' if geometry.cam else ''}] "
          f"2D access {access_ps:.0f} ps")
    print(f"  {'stack':<10} {'strategy':<8} {'latency':>8} {'energy':>8} "
          f"{'footprint':>10}")

    for stack, asym in (
        (stack_m3d_iso(), False),
        (stack_m3d_hetero(), True),
        (stack_tsv3d(), False),
    ):
        for name, result in evaluate_strategies(
            geometry, stack, asymmetric=asym
        ).items():
            report = reduction_report(baseline, result)
            print(
                f"  {stack.name:<10} {name:<8} {report.latency_pct:7.1f}% "
                f"{report.energy_pct:7.1f}% {report.footprint_pct:9.1f}%"
            )

    best = plan_structure(geometry, stack_m3d_hetero(), asymmetric=True)
    print(
        f"  -> recommended hetero-layer design: {best.best.strategy} "
        f"(latency -{best.best_report.latency_pct:.0f}%, "
        f"footprint -{best.best_report.footprint_pct:.0f}%)"
    )
    if best.best.strategy.endswith("PP"):
        print(
            f"     port split: {best.best.bottom_ports} bottom / "
            f"{best.best.top_ports} top, top transistors "
            f"x{best.best.top_width_mult:.1f}"
        )
    else:
        print(
            f"     array split: {best.best.bottom_fraction:.0%} bottom, "
            f"top transistors x{best.best.top_width_mult:.1f}"
        )


def main() -> None:
    print("Partition explorer - the paper's methodology on custom structures")
    for geometry in CUSTOM_STRUCTURES:
        explore(geometry)


if __name__ == "__main__":
    main()
